//! The instrumented choke point: one observer per run, called after every
//! placement decision.

use crate::counters::SchedCounters;
use crate::record::{DecisionRecord, FaultRecord, Phase};
use crate::sink::{NullSink, TraceSink};
use pnats_core::context::{MapSchedContext, ReduceSchedContext};
use pnats_core::placer::{Decision, DecisionDetail, PlacerStats};
use pnats_net::NodeId;

/// Owns the run's [`TraceSink`] and [`SchedCounters`] and turns each
/// decision into a record (when tracing is enabled) plus counter
/// increments (always).
///
/// Both runtimes call [`observe_map`](Self::observe_map) /
/// [`observe_reduce`](Self::observe_reduce) immediately after the placer
/// returns, passing the same context snapshot the placer saw — that is
/// what makes the observer a single audited choke point instead of a
/// per-runtime reimplementation.
pub struct DecisionObserver {
    sink: Box<dyn TraceSink>,
    counters: SchedCounters,
    round: u64,
    /// Tenant id per job index; `None` outside multi-tenant service mode,
    /// which keeps single-pool trace bytes unchanged.
    job_tenant: Option<Vec<u32>>,
}

impl Default for DecisionObserver {
    fn default() -> Self {
        Self::disabled()
    }
}

impl std::fmt::Debug for DecisionObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecisionObserver")
            .field("tracing", &self.sink.enabled())
            .field("counters", &self.counters)
            .field("round", &self.round)
            .finish()
    }
}

impl DecisionObserver {
    /// Counters only; records are dropped ([`NullSink`]).
    pub fn disabled() -> Self {
        Self::with_sink(Box::new(NullSink))
    }

    /// Counters plus records delivered to `sink`.
    pub fn with_sink(sink: Box<dyn TraceSink>) -> Self {
        Self { sink, counters: SchedCounters::default(), round: 0, job_tenant: None }
    }

    /// Tag subsequent records with each job's tenant (multi-tenant
    /// service mode only — tagged records serialize an extra `tenant`
    /// field, so single-pool runs must not call this).
    pub fn set_tenants(&mut self, job_tenant: Vec<u32>) {
        self.job_tenant = Some(job_tenant);
    }

    /// The tenant tag for `job`, if tenant tagging is active.
    fn tenant_of(&self, job: u32) -> Option<u32> {
        let tags = self.job_tenant.as_ref()?;
        Some(tags.get(job as usize).copied().unwrap_or(0))
    }

    /// Whether records are being built at all.
    pub fn tracing(&self) -> bool {
        self.sink.enabled()
    }

    /// Set the heartbeat round stamped on subsequent records.
    pub fn begin_round(&mut self, round: u64) {
        self.round = round;
    }

    /// Book a map-placement decision.
    pub fn observe_map(
        &mut self,
        ctx: &MapSchedContext<'_>,
        node: NodeId,
        decision: Decision,
        detail: Option<DecisionDetail>,
    ) {
        self.counters.record(decision);
        if self.sink.enabled() {
            let rec = DecisionRecord {
                t: ctx.now,
                round: self.round,
                phase: Phase::Map,
                job: ctx.job.0,
                tenant: self.tenant_of(ctx.job.0),
                node: node.0,
                candidates: ctx.candidates.len(),
                free_nodes: ctx.free_map_nodes.len(),
                decision,
                detail,
            };
            self.sink.record(&rec);
        }
    }

    /// Book a reduce-placement decision.
    pub fn observe_reduce(
        &mut self,
        ctx: &ReduceSchedContext<'_>,
        node: NodeId,
        decision: Decision,
        detail: Option<DecisionDetail>,
    ) {
        self.counters.record(decision);
        if self.sink.enabled() {
            let rec = DecisionRecord {
                t: ctx.now,
                round: self.round,
                phase: Phase::Reduce,
                job: ctx.job.0,
                tenant: self.tenant_of(ctx.job.0),
                node: node.0,
                candidates: ctx.candidates.len(),
                free_nodes: ctx.free_reduce_nodes.len(),
                decision,
                detail,
            };
            self.sink.record(&rec);
        }
    }

    /// Book one fault-injection/recovery action: counter increments always,
    /// a trace line when the sink is enabled.
    pub fn observe_fault(&mut self, rec: &FaultRecord) {
        self.counters.record_fault(rec.kind);
        if self.sink.enabled() {
            self.sink.record_fault(rec);
        }
    }

    /// Fold the placer's internal prune/cache tallies into the counters.
    /// Call once, at end of run.
    pub fn absorb_placer(&mut self, stats: &PlacerStats) {
        self.counters.absorb_placer(stats);
    }

    /// Book the derived recovery tallies a journal replay computed: how
    /// much finished/assigned state this tracker incarnation inherited
    /// instead of scheduling itself. Called at most once, right after
    /// replay — these fields balance the cross-incarnation conservation
    /// laws (`check_cluster_report` / `check_cluster_run`).
    pub fn absorb_recovery(
        &mut self,
        recovered_maps: u64,
        recovered_reduces: u64,
        inherited_assignments: u64,
        recovered_reexec: u64,
    ) {
        self.counters.recovered_maps += recovered_maps;
        self.counters.recovered_reduces += recovered_reduces;
        self.counters.inherited_assignments += inherited_assignments;
        self.counters.recovered_reexec += recovered_reexec;
    }

    /// The counters accumulated so far.
    pub fn counters(&self) -> &SchedCounters {
        &self.counters
    }

    /// Take the buffered trace as JSONL, if the sink keeps one in memory.
    pub fn drain_jsonl(&mut self) -> Option<String> {
        self.sink.drain_jsonl()
    }

    /// Flush file-backed sinks.
    pub fn flush(&mut self) {
        self.sink.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::InMemorySink;
    use pnats_core::context::MapCandidate;
    use pnats_core::placer::SkipReason;
    use pnats_core::types::{JobId, MapTaskId};
    use pnats_net::{ClusterLayout, DistanceMatrix, RackId};

    fn with_ctx(f: impl FnOnce(&MapSchedContext<'_>)) {
        let h = DistanceMatrix::zero(2);
        let layout = ClusterLayout::new(vec![RackId(0); 2]);
        let cands = vec![MapCandidate {
            task: MapTaskId { job: JobId(3), index: 0 },
            block_size: 1,
            replicas: vec![NodeId(0)],
        }];
        let free = vec![NodeId(0), NodeId(1)];
        let ctx = MapSchedContext::new(JobId(3), &cands, &free, &h, &layout).at(2.5);
        f(&ctx);
    }

    #[test]
    fn disabled_observer_still_counts() {
        with_ctx(|ctx| {
            let mut obs = DecisionObserver::disabled();
            assert!(!obs.tracing());
            obs.observe_map(ctx, NodeId(0), Decision::Assign(0), None);
            obs.observe_map(ctx, NodeId(1), Decision::Skip(SkipReason::DrawFailed), None);
            assert_eq!(obs.counters().offers, 2);
            assert_eq!(obs.counters().assigns, 1);
            assert!(obs.counters().consistent());
            assert!(obs.drain_jsonl().is_none());
        });
    }

    #[test]
    fn tracing_observer_stamps_round_and_context() {
        with_ctx(|ctx| {
            let mut obs = DecisionObserver::with_sink(Box::new(InMemorySink::unbounded()));
            obs.begin_round(7);
            obs.observe_map(ctx, NodeId(1), Decision::Assign(0), None);
            let text = obs.drain_jsonl().expect("in-memory trace");
            let line = text.lines().next().expect("one record");
            assert!(line.contains("\"round\":7"), "{line}");
            assert!(line.contains("\"t\":2.5"), "{line}");
            assert!(line.contains("\"job\":3"), "{line}");
            assert!(line.contains("\"node\":1"), "{line}");
            assert!(line.contains("\"candidates\":1"), "{line}");
            assert!(line.contains("\"free\":2"), "{line}");
        });
    }

    #[test]
    fn tenant_tagging_is_opt_in() {
        with_ctx(|ctx| {
            // Untagged: historical byte layout.
            let mut obs = DecisionObserver::with_sink(Box::new(InMemorySink::unbounded()));
            obs.observe_map(ctx, NodeId(0), Decision::Assign(0), None);
            assert!(!obs.drain_jsonl().unwrap().contains("tenant"));
            // Tagged: job 3 belongs to tenant 1.
            let mut obs = DecisionObserver::with_sink(Box::new(InMemorySink::unbounded()));
            obs.set_tenants(vec![0, 0, 0, 1]);
            obs.observe_map(ctx, NodeId(0), Decision::Assign(0), None);
            let text = obs.drain_jsonl().unwrap();
            assert!(text.contains("\"job\":3,\"tenant\":1"), "{text}");
        });
    }

    #[test]
    fn fault_observation_counts_and_traces() {
        use crate::record::FaultKind;
        let mut obs = DecisionObserver::with_sink(Box::new(InMemorySink::unbounded()));
        obs.observe_fault(&FaultRecord {
            t: 9.0,
            kind: FaultKind::NodeCrash,
            node: 4,
            job: None,
            task: None,
        });
        obs.observe_fault(&FaultRecord {
            t: 9.0,
            kind: FaultKind::TaskRescheduled,
            node: 4,
            job: Some(0),
            task: Some(2),
        });
        assert_eq!(obs.counters().node_crashes, 1);
        assert_eq!(obs.counters().retries, 1);
        assert_eq!(obs.counters().offers, 0, "faults are not offers");
        assert!(obs.counters().consistent());
        let text = obs.drain_jsonl().expect("in-memory trace");
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("\"fault\":\"task_rescheduled\""), "{text}");
    }

    #[test]
    fn absorbs_placer_extras() {
        let mut obs = DecisionObserver::disabled();
        let stats = PlacerStats {
            pruned: 4,
            cache_hits: 9,
            cache_misses: 3,
            ..PlacerStats::default()
        };
        obs.absorb_placer(&stats);
        assert_eq!(obs.counters().pruned, 4);
        assert_eq!(obs.counters().cache_hits, 9);
        assert_eq!(obs.counters().cache_misses, 3);
    }
}
