//! Deterministic min-cost placement: the paper's fine-grained cost model
//! *without* the probabilistic relaxation.
//!
//! On each slot offer, the pending task with the lowest transmission cost on
//! the offered node is launched unconditionally. This is the natural greedy
//! strawman the paper argues against implicitly: it maximizes slot
//! utilization and uses the same cost model, but a node that is mediocre for
//! every pending task still gets one, and early jobs monopolize good slots.
//! The ablation benches compare it against [`ProbabilisticPlacer`]
//! (`crates/bench/src/bin/ablation_prob_model.rs`).
//!
//! [`ProbabilisticPlacer`]: pnats_core::prob_sched::ProbabilisticPlacer

use pnats_core::context::{MapSchedContext, ReduceSchedContext};
use pnats_core::cost::{map_cost, reduce_cost};
use pnats_core::estimate::IntermediateEstimator;
use pnats_core::placer::{Decision, SkipReason, TaskPlacer};
use pnats_net::NodeId;
use rand::rngs::SmallRng;

/// Greedy deterministic min-cost placement.
#[derive(Clone, Copy, Debug)]
pub struct MinCostPlacer {
    /// Estimator for reduce-side intermediate sizes (defaults to the
    /// paper's progress extrapolation, so the only difference from the
    /// probabilistic scheduler is the missing Bernoulli gate).
    pub estimator: IntermediateEstimator,
}

impl MinCostPlacer {
    /// Min-cost with the paper's estimator.
    pub fn new() -> Self {
        Self { estimator: IntermediateEstimator::ProgressExtrapolated }
    }
}

impl Default for MinCostPlacer {
    fn default() -> Self {
        Self::new()
    }
}

impl TaskPlacer for MinCostPlacer {
    fn name(&self) -> &'static str {
        "mincost"
    }

    fn place_map(
        &mut self,
        ctx: &MapSchedContext<'_>,
        node: NodeId,
        _rng: &mut SmallRng,
    ) -> Decision {
        let best = ctx
            .candidates
            .iter()
            .enumerate()
            .map(|(i, c)| (i, map_cost(c, node, ctx.cost)))
            .min_by(|a, b| a.1.total_cmp(&b.1));
        match best {
            Some((i, _)) => Decision::Assign(i),
            None => Decision::Skip(SkipReason::NoCandidate),
        }
    }

    fn place_reduce(
        &mut self,
        ctx: &ReduceSchedContext<'_>,
        node: NodeId,
        _rng: &mut SmallRng,
    ) -> Decision {
        if ctx.job_reduce_nodes.contains(&node) {
            return Decision::Skip(SkipReason::Collocated);
        }
        let best = ctx
            .candidates
            .iter()
            .enumerate()
            .map(|(i, c)| (i, reduce_cost(c, node, ctx.cost, self.estimator)))
            .min_by(|a, b| a.1.total_cmp(&b.1));
        match best {
            Some((i, _)) => Decision::Assign(i),
            None => Decision::Skip(SkipReason::NoCandidate),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnats_core::context::{MapCandidate, ReduceCandidate, ShuffleSource};
    use pnats_core::types::{JobId, MapTaskId, ReduceTaskId};
    use pnats_net::DistanceMatrix;
    use rand::SeedableRng;

    #[test]
    fn picks_cheapest_map_task() {
        let h = DistanceMatrix::paper_figure2();
        let layout = pnats_net::ClusterLayout::new(vec![pnats_net::RackId(0); 4]);
        let mk = |i: u32, r: u32| MapCandidate {
            task: MapTaskId { job: JobId(0), index: i },
            block_size: 100,
            replicas: vec![NodeId(r)],
        };
        // From D2: replica D1 costs h=10, replica D0 costs h=2.
        let cands = vec![mk(0, 1), mk(1, 0)];
        let free = vec![NodeId(2)];
        let ctx = MapSchedContext::new(JobId(0), &cands, &free, &h, &layout);
        let mut p = MinCostPlacer::new();
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(p.place_map(&ctx, NodeId(2), &mut rng), Decision::Assign(1));
    }

    #[test]
    fn always_assigns_even_when_expensive() {
        let h = DistanceMatrix::paper_figure2();
        let layout = pnats_net::ClusterLayout::new(vec![pnats_net::RackId(0); 4]);
        let cands = vec![MapCandidate {
            task: MapTaskId { job: JobId(0), index: 0 },
            block_size: 100,
            replicas: vec![NodeId(1)],
        }];
        // D1 itself is free — the probabilistic scheduler would skip D2;
        // min-cost launches anyway.
        let free = vec![NodeId(1), NodeId(2)];
        let ctx = MapSchedContext::new(JobId(0), &cands, &free, &h, &layout);
        let mut p = MinCostPlacer::new();
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(p.place_map(&ctx, NodeId(2), &mut rng), Decision::Assign(0));
    }

    #[test]
    fn picks_cheapest_reduce_and_respects_collocation() {
        let h = DistanceMatrix::paper_figure2();
        let layout = pnats_net::ClusterLayout::new(vec![pnats_net::RackId(0); 4]);
        let mk = |i: u32, src_node: u32, bytes: f64| ReduceCandidate {
            task: ReduceTaskId { job: JobId(0), index: i },
            sources: vec![ShuffleSource {
                node: NodeId(src_node),
                current_bytes: bytes,
                input_read: 1,
                input_total: 1,
            }],
        };
        // On D0: candidate 0 sourced from D1 (h=4, 10 bytes -> 40);
        //        candidate 1 sourced from D2 (h=2, 10 bytes -> 20).
        let cands = vec![mk(0, 1, 10.0), mk(1, 2, 10.0)];
        let free = vec![NodeId(0)];
        let ctx = ReduceSchedContext::new(JobId(0), &cands, &free, &h, &layout)
            .map_phase(1.0, 1, 1)
            .reduce_phase(0, 2);
        let mut p = MinCostPlacer::new();
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(p.place_reduce(&ctx, NodeId(0), &mut rng), Decision::Assign(1));

        let running = vec![NodeId(0)];
        let ctx = ctx.running_on(&running);
        assert_eq!(
            p.place_reduce(&ctx, NodeId(0), &mut rng),
            Decision::Skip(SkipReason::Collocated)
        );
    }
}
