//! A small min-cost max-flow solver (successive shortest paths with
//! Bellman-Ford/SPFA), the substrate for the Quincy-style scheduler.
//!
//! Quincy (Isard et al., SOSP'09 — the paper's related work [20]) phrases
//! cluster scheduling as min-cost flow: tasks are sources of one unit,
//! machines sinks, edge costs encode data movement. The graphs here are
//! small (a candidate window × cluster nodes), so the classic O(V·E) per
//! augmentation algorithm is plenty.

/// A directed flow network with costs. Node ids are dense `usize`.
#[derive(Clone, Debug, Default)]
pub struct MinCostFlow {
    /// Forward+backward arcs, interleaved (arc `i^1` is `i`'s reverse).
    to: Vec<usize>,
    cap: Vec<i64>,
    cost: Vec<i64>,
    /// Per-node adjacency (arc indices).
    adj: Vec<Vec<usize>>,
}

impl MinCostFlow {
    /// An empty network with `n` nodes.
    pub fn new(n: usize) -> Self {
        Self { to: Vec::new(), cap: Vec::new(), cost: Vec::new(), adj: vec![Vec::new(); n] }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Add an arc `u → v` with capacity `cap` and per-unit cost `cost`.
    /// Returns the arc id (use with [`MinCostFlow::flow_on`]).
    pub fn add_edge(&mut self, u: usize, v: usize, cap: i64, cost: i64) -> usize {
        assert!(u < self.adj.len() && v < self.adj.len(), "node out of range");
        assert!(cap >= 0);
        let id = self.to.len();
        self.to.push(v);
        self.cap.push(cap);
        self.cost.push(cost);
        self.adj[u].push(id);
        self.to.push(u);
        self.cap.push(0);
        self.cost.push(-cost);
        self.adj[v].push(id + 1);
        id
    }

    /// Flow currently on arc `id` (residual of the reverse arc).
    pub fn flow_on(&self, id: usize) -> i64 {
        self.cap[id ^ 1]
    }

    /// Send up to `limit` units from `s` to `t` at minimum total cost.
    /// Returns `(flow, cost)`. Handles negative arc costs (no negative
    /// cycles may exist in the input).
    pub fn run(&mut self, s: usize, t: usize, limit: i64) -> (i64, i64) {
        assert!(s < self.n_nodes() && t < self.n_nodes());
        let n = self.n_nodes();
        let mut flow = 0i64;
        let mut total_cost = 0i64;
        while flow < limit {
            // SPFA shortest path by cost in the residual graph.
            let mut dist = vec![i64::MAX; n];
            let mut in_queue = vec![false; n];
            let mut prev_arc = vec![usize::MAX; n];
            dist[s] = 0;
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(s);
            in_queue[s] = true;
            while let Some(u) = queue.pop_front() {
                in_queue[u] = false;
                for &a in &self.adj[u] {
                    if self.cap[a] > 0 && dist[u] != i64::MAX {
                        let v = self.to[a];
                        let nd = dist[u] + self.cost[a];
                        if nd < dist[v] {
                            dist[v] = nd;
                            prev_arc[v] = a;
                            if !in_queue[v] {
                                queue.push_back(v);
                                in_queue[v] = true;
                            }
                        }
                    }
                }
            }
            if dist[t] == i64::MAX {
                break; // no augmenting path
            }
            // Bottleneck along the path.
            let mut push = limit - flow;
            let mut v = t;
            while v != s {
                let a = prev_arc[v];
                push = push.min(self.cap[a]);
                v = self.to[a ^ 1];
            }
            // Apply.
            let mut v = t;
            while v != s {
                let a = prev_arc[v];
                self.cap[a] -= push;
                self.cap[a ^ 1] += push;
                v = self.to[a ^ 1];
            }
            flow += push;
            total_cost += push * dist[t];
        }
        (flow, total_cost)
    }
}

/// Solve a (possibly rectangular) assignment problem: `costs[i][j]` is the
/// cost of giving row task `i` to column slot `j`; `col_caps[j]` how many
/// tasks slot `j` accepts. Returns for each row the assigned column (or
/// `None` if more rows than capacity) minimizing total cost.
pub fn assignment(costs: &[Vec<i64>], col_caps: &[usize]) -> Vec<Option<usize>> {
    let rows = costs.len();
    let cols = col_caps.len();
    if rows == 0 {
        return Vec::new();
    }
    for r in costs {
        assert_eq!(r.len(), cols, "cost matrix must be rectangular");
    }
    // Nodes: 0 = source, 1..=rows = tasks, rows+1..=rows+cols = slots,
    // rows+cols+1 = sink.
    let s = 0;
    let t = rows + cols + 1;
    let mut g = MinCostFlow::new(t + 1);
    let mut task_arcs = vec![Vec::with_capacity(cols); rows];
    for (i, row) in costs.iter().enumerate() {
        g.add_edge(s, 1 + i, 1, 0);
        for (j, &cost) in row.iter().enumerate() {
            task_arcs[i].push(g.add_edge(1 + i, 1 + rows + j, 1, cost));
        }
    }
    for (j, &cap) in col_caps.iter().enumerate() {
        g.add_edge(1 + rows + j, t, cap as i64, 0);
    }
    g.run(s, t, rows as i64);
    (0..rows)
        .map(|i| (0..cols).find(|&j| g.flow_on(task_arcs[i][j]) > 0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_path() {
        let mut g = MinCostFlow::new(3);
        g.add_edge(0, 1, 5, 2);
        g.add_edge(1, 2, 3, 1);
        let (f, c) = g.run(0, 2, 10);
        assert_eq!(f, 3);
        assert_eq!(c, 9);
    }

    #[test]
    fn chooses_cheaper_parallel_path_first() {
        let mut g = MinCostFlow::new(4);
        g.add_edge(0, 1, 1, 10); // expensive
        g.add_edge(0, 2, 1, 1); // cheap
        g.add_edge(1, 3, 1, 0);
        g.add_edge(2, 3, 1, 0);
        let (f, c) = g.run(0, 3, 1);
        assert_eq!((f, c), (1, 1), "takes the cheap path");
        let (f2, c2) = g.run(0, 3, 1);
        assert_eq!((f2, c2), (1, 10), "then the expensive one");
    }

    #[test]
    fn respects_limit() {
        let mut g = MinCostFlow::new(2);
        g.add_edge(0, 1, 100, 1);
        let (f, c) = g.run(0, 1, 7);
        assert_eq!((f, c), (7, 7));
    }

    #[test]
    fn disconnected_returns_zero() {
        let mut g = MinCostFlow::new(3);
        g.add_edge(0, 1, 1, 1);
        let (f, c) = g.run(0, 2, 5);
        assert_eq!((f, c), (0, 0));
    }

    #[test]
    fn assignment_picks_global_optimum() {
        // Greedy would give task 0 slot 0 (cost 1) forcing task 1 to cost
        // 10 (total 11); the optimum is 2 + 2 = 4.
        let costs = vec![vec![1, 2], vec![2, 10]];
        let a = assignment(&costs, &[1, 1]);
        assert_eq!(a, vec![Some(1), Some(0)]);
    }

    #[test]
    fn assignment_respects_capacity() {
        // One slot, capacity 1, two tasks: cheaper task wins.
        let costs = vec![vec![5], vec![3]];
        let a = assignment(&costs, &[1]);
        assert_eq!(a, vec![None, Some(0)]);
    }

    #[test]
    fn assignment_multi_capacity_slot() {
        let costs = vec![vec![1], vec![1], vec![1]];
        let a = assignment(&costs, &[2]);
        assert_eq!(a.iter().filter(|x| x.is_some()).count(), 2);
    }

    #[test]
    fn assignment_empty() {
        assert!(assignment(&[], &[1, 2]).is_empty());
    }
}
