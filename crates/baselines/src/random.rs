//! Uniform random placement — the floor every scheduler should beat.

use pnats_core::context::{MapSchedContext, ReduceSchedContext};
use pnats_core::placer::{Decision, TaskPlacer};
use pnats_net::NodeId;
use rand::rngs::SmallRng;
use rand::Rng;

/// Assigns a uniformly random pending task to every offered slot.
#[derive(Clone, Copy, Debug, Default)]
pub struct RandomPlacer;

impl TaskPlacer for RandomPlacer {
    fn name(&self) -> &'static str {
        "random"
    }

    fn place_map(
        &mut self,
        ctx: &MapSchedContext<'_>,
        _node: NodeId,
        rng: &mut SmallRng,
    ) -> Decision {
        Decision::Assign(rng.gen_range(0..ctx.candidates.len()))
    }

    fn place_reduce(
        &mut self,
        ctx: &ReduceSchedContext<'_>,
        _node: NodeId,
        rng: &mut SmallRng,
    ) -> Decision {
        Decision::Assign(rng.gen_range(0..ctx.candidates.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnats_core::context::{MapCandidate, ReduceCandidate};
    use pnats_core::types::{JobId, MapTaskId, ReduceTaskId};
    use pnats_net::{ClusterLayout, DistanceMatrix, RackId};
    use rand::SeedableRng;

    #[test]
    fn covers_all_candidates() {
        let h = DistanceMatrix::zero(2);
        let layout = ClusterLayout::new(vec![RackId(0); 2]);
        let cands: Vec<MapCandidate> = (0..4)
            .map(|i| MapCandidate {
                task: MapTaskId { job: JobId(0), index: i },
                block_size: 1,
                replicas: vec![NodeId(0)],
            })
            .collect();
        let free = vec![NodeId(0)];
        let ctx = MapSchedContext::new(JobId(0), &cands, &free, &h, &layout);
        let mut p = RandomPlacer;
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            if let Decision::Assign(i) = p.place_map(&ctx, NodeId(0), &mut rng) {
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn reduce_never_skips() {
        let h = DistanceMatrix::zero(2);
        let layout = ClusterLayout::new(vec![RackId(0); 2]);
        let cands = vec![ReduceCandidate {
            task: ReduceTaskId { job: JobId(0), index: 0 },
            sources: vec![],
        }];
        let free = vec![NodeId(0)];
        let ctx = ReduceSchedContext::new(JobId(0), &cands, &free, &h, &layout)
            .map_phase(0.0, 0, 1);
        let mut p = RandomPlacer;
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(p.place_reduce(&ctx, NodeId(0), &mut rng), Decision::Assign(0));
    }
}
