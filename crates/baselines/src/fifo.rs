//! FIFO / greedy-locality task placement: the stock Hadoop FIFO scheduler's
//! task-level behaviour. Never delays: every slot offer launches a task,
//! preferring the best locality class available *right now*.

use pnats_core::context::{MapSchedContext, ReduceSchedContext};
use pnats_core::placer::{Decision, SkipReason, TaskPlacer};
use pnats_net::NodeId;
use rand::rngs::SmallRng;

/// Greedy instant placement with locality preference.
#[derive(Clone, Copy, Debug, Default)]
pub struct FifoGreedyPlacer;

impl TaskPlacer for FifoGreedyPlacer {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn place_map(
        &mut self,
        ctx: &MapSchedContext<'_>,
        node: NodeId,
        _rng: &mut SmallRng,
    ) -> Decision {
        if let Some(i) = ctx.candidates.iter().position(|c| c.is_local_to(node)) {
            return Decision::Assign(i);
        }
        if let Some(i) = ctx
            .candidates
            .iter()
            .position(|c| c.is_rack_local_to(node, ctx.layout))
        {
            return Decision::Assign(i);
        }
        Decision::Assign(0)
    }

    fn place_reduce(
        &mut self,
        ctx: &ReduceSchedContext<'_>,
        node: NodeId,
        _rng: &mut SmallRng,
    ) -> Decision {
        // FIFO order; keep the common-sense co-location guard so comparisons
        // against the paper's method are about placement, not slot packing.
        if ctx.job_reduce_nodes.contains(&node) {
            return Decision::Skip(SkipReason::Collocated);
        }
        Decision::Assign(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnats_core::context::{MapCandidate, ReduceCandidate};
    use pnats_core::types::{JobId, MapTaskId, ReduceTaskId};
    use pnats_net::{DistanceMatrix, Topology};
    use rand::SeedableRng;

    const GB: f64 = 1e9 / 8.0;

    #[test]
    fn prefers_local_then_rack_then_any() {
        let topo = Topology::multi_rack(2, 2, GB, GB);
        let h = DistanceMatrix::hops(&topo);
        let mk = |i: u32, r: u32| MapCandidate {
            task: MapTaskId { job: JobId(0), index: i },
            block_size: 1,
            replicas: vec![NodeId(r)],
        };
        let mut p = FifoGreedyPlacer;
        let mut rng = SmallRng::seed_from_u64(0);
        let free = vec![NodeId(0)];

        // Candidate 2 is local to node 0.
        let cands = vec![mk(0, 2), mk(1, 1), mk(2, 0)];
        let ctx = MapSchedContext::new(JobId(0), &cands, &free, &h, topo.layout());
        assert_eq!(p.place_map(&ctx, NodeId(0), &mut rng), Decision::Assign(2));

        // No local: candidate 1 (node 1, same rack as 0) wins.
        let cands = vec![mk(0, 2), mk(1, 1)];
        let ctx = MapSchedContext::new(JobId(0), &cands, &free, &h, topo.layout());
        assert_eq!(p.place_map(&ctx, NodeId(0), &mut rng), Decision::Assign(1));

        // Neither: first in FIFO order.
        let cands = vec![mk(0, 2), mk(1, 3)];
        let ctx = MapSchedContext::new(JobId(0), &cands, &free, &h, topo.layout());
        assert_eq!(p.place_map(&ctx, NodeId(0), &mut rng), Decision::Assign(0));
    }

    #[test]
    fn reduce_is_fifo_with_collocation_guard() {
        let topo = Topology::single_rack(2, GB);
        let h = DistanceMatrix::hops(&topo);
        let cands: Vec<ReduceCandidate> = (0..2)
            .map(|i| ReduceCandidate {
                task: ReduceTaskId { job: JobId(0), index: i },
                sources: vec![],
            })
            .collect();
        let free = vec![NodeId(0)];
        let mut p = FifoGreedyPlacer;
        let mut rng = SmallRng::seed_from_u64(0);
        let ctx = ReduceSchedContext::new(JobId(0), &cands, &free, &h, topo.layout())
            .map_phase(1.0, 1, 1)
            .reduce_phase(0, 2);
        assert_eq!(p.place_reduce(&ctx, NodeId(0), &mut rng), Decision::Assign(0));
        let running = vec![NodeId(0)];
        let ctx = ctx.running_on(&running);
        assert_eq!(
            p.place_reduce(&ctx, NodeId(0), &mut rng),
            Decision::Skip(SkipReason::Collocated)
        );
    }
}
