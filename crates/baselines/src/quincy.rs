//! A Quincy-style placer (Isard et al., SOSP'09 — the paper's related-work
//! [20]): placement as **global min-cost matching** between pending tasks
//! and free slots, rather than greedy per-offer decisions.
//!
//! On each offer we build the bipartite graph of (candidate window ×
//! currently-free nodes) with the paper's transmission costs on the edges,
//! solve the assignment with min-cost flow, and launch whichever task the
//! optimum matched to the *offered* node (skipping if the optimum sends
//! every candidate elsewhere — those slots' offers will come).
//!
//! Caveats, faithfully inherited from Quincy's design point: solving a
//! global matching per scheduling event is much more expensive than the
//! paper's O(candidates × nodes) probability pass — one of the
//! probabilistic scheduler's selling points. Use the candidate window to
//! bound the graph.

use crate::mcmf::assignment;
use pnats_core::context::{MapSchedContext, ReduceSchedContext};
use pnats_core::cost::{map_cost, reduce_cost};
use pnats_core::estimate::IntermediateEstimator;
use pnats_core::placer::{Decision, SkipReason, TaskPlacer};
use pnats_net::NodeId;
use rand::rngs::SmallRng;

/// Global min-cost-matching placement.
#[derive(Clone, Copy, Debug, Default)]
pub struct QuincyPlacer;

/// Fixed-point scale for converting f64 costs to integer flow costs.
const SCALE: f64 = 1e-3; // costs are byte·hops: keep magnitudes in i64

fn to_int(c: f64) -> i64 {
    if c.is_infinite() {
        i64::MAX / 4
    } else {
        (c * SCALE).round() as i64
    }
}

impl TaskPlacer for QuincyPlacer {
    fn name(&self) -> &'static str {
        "quincy"
    }

    fn place_map(
        &mut self,
        ctx: &MapSchedContext<'_>,
        node: NodeId,
        _rng: &mut SmallRng,
    ) -> Decision {
        let slots = ctx.free_map_nodes;
        let costs: Vec<Vec<i64>> = ctx
            .candidates
            .iter()
            .map(|c| slots.iter().map(|&k| to_int(map_cost(c, k, ctx.cost))).collect())
            .collect();
        let caps = vec![1usize; slots.len()];
        let matching = assignment(&costs, &caps);
        let here = slots.iter().position(|&k| k == node).expect("offered node is free");
        match matching.iter().position(|m| *m == Some(here)) {
            Some(task) => Decision::Assign(task),
            // The optimum matched every candidate to some *other* free
            // node: no candidate is chosen for this one.
            None => Decision::Skip(SkipReason::NoCandidate),
        }
    }

    fn place_reduce(
        &mut self,
        ctx: &ReduceSchedContext<'_>,
        node: NodeId,
        _rng: &mut SmallRng,
    ) -> Decision {
        if ctx.job_reduce_nodes.contains(&node) {
            return Decision::Skip(SkipReason::Collocated);
        }
        let est = IntermediateEstimator::ProgressExtrapolated;
        let slots: Vec<NodeId> = ctx
            .free_reduce_nodes
            .iter()
            .copied()
            .filter(|k| !ctx.job_reduce_nodes.contains(k))
            .collect();
        let Some(here) = slots.iter().position(|&k| k == node) else {
            return Decision::Skip(SkipReason::NoCandidate);
        };
        let costs: Vec<Vec<i64>> = ctx
            .candidates
            .iter()
            .map(|c| {
                slots
                    .iter()
                    .map(|&k| to_int(reduce_cost(c, k, ctx.cost, est)))
                    .collect()
            })
            .collect();
        let caps = vec![1usize; slots.len()];
        let matching = assignment(&costs, &caps);
        match matching.iter().position(|m| *m == Some(here)) {
            Some(task) => Decision::Assign(task),
            None => Decision::Skip(SkipReason::NoCandidate),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnats_core::context::MapCandidate;
    use pnats_core::types::{JobId, MapTaskId};
    use pnats_net::{ClusterLayout, DistanceMatrix, RackId};
    use rand::SeedableRng;

    fn layout4() -> ClusterLayout {
        ClusterLayout::new(vec![RackId(0); 4])
    }

    fn mk(i: u32, replica: u32) -> MapCandidate {
        MapCandidate {
            task: MapTaskId { job: JobId(0), index: i },
            block_size: 100,
            replicas: vec![NodeId(replica)],
        }
    }

    #[test]
    fn globally_optimal_matching_beats_greedy() {
        // Task 0 is local to D0 AND cheap on D2 (2 hops); task 1 is ONLY
        // cheap on D0. Greedy on a D0 offer takes task 0 (cost 0); the
        // global optimum gives D0 to task 1 only if that lowers total
        // cost — here both tasks local-or-2-hops: optimum assigns task 0
        // to D0 (0) and task 1 to its own replica D2? Build it explicitly:
        let h = DistanceMatrix::paper_figure2();
        let layout = layout4();
        // task0 replica on D1; task1 replica on D3.
        let cands = vec![mk(0, 1), mk(1, 3)];
        let free = vec![NodeId(1), NodeId(3)];
        let mut q = QuincyPlacer;
        let mut rng = SmallRng::seed_from_u64(0);
        // Offer on D1: optimum matches task0 -> D1 (0 cost), task1 -> D3.
        let ctx = MapSchedContext::new(JobId(0), &cands, &free, &h, &layout);
        assert_eq!(q.place_map(&ctx, NodeId(1), &mut rng), Decision::Assign(0));
        assert_eq!(q.place_map(&ctx, NodeId(3), &mut rng), Decision::Assign(1));
    }

    #[test]
    fn skips_when_optimum_places_elsewhere() {
        let h = DistanceMatrix::paper_figure2();
        let layout = layout4();
        // One task, local to D1; both D1 and D2 free. Offer on D2: the
        // optimum sends the task to D1, so D2's offer is declined.
        let cands = vec![mk(0, 1)];
        let free = vec![NodeId(1), NodeId(2)];
        let ctx = MapSchedContext::new(JobId(0), &cands, &free, &h, &layout);
        let mut q = QuincyPlacer;
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(
            q.place_map(&ctx, NodeId(2), &mut rng),
            Decision::Skip(SkipReason::NoCandidate)
        );
        assert_eq!(q.place_map(&ctx, NodeId(1), &mut rng), Decision::Assign(0));
    }

    #[test]
    fn resolves_contention_globally() {
        let h = DistanceMatrix::paper_figure2();
        let layout = layout4();
        // Both tasks want D1 (their only replica); only one can have it.
        // The other is matched to the cheapest alternative. From the H
        // matrix, D0 is 4 hops from D1, D2 is 10 — optimum puts the
        // spill-over on D0, never D2.
        let cands = vec![mk(0, 1), mk(1, 1)];
        let free = vec![NodeId(0), NodeId(1), NodeId(2)];
        let ctx = MapSchedContext::new(JobId(0), &cands, &free, &h, &layout);
        let mut q = QuincyPlacer;
        let mut rng = SmallRng::seed_from_u64(0);
        // D1 gets one of the tasks.
        assert!(matches!(q.place_map(&ctx, NodeId(1), &mut rng), Decision::Assign(_)));
        // D0 gets the other.
        assert!(matches!(q.place_map(&ctx, NodeId(0), &mut rng), Decision::Assign(_)));
        // D2's offer is declined — the optimum never uses the 10-hop node.
        assert_eq!(
            q.place_map(&ctx, NodeId(2), &mut rng),
            Decision::Skip(SkipReason::NoCandidate)
        );
    }
}
