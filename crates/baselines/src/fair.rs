//! Hadoop Fair Scheduler task-level behaviour: delay scheduling for maps,
//! random reduce placement.
//!
//! Delay scheduling (Zaharia et al., EuroSys'10, the paper's [3]): when the
//! job at the head of the fair-share order cannot launch a node-local task
//! on the offered node, *skip* the slot and remember the skip; only after
//! `node_delay` skipped opportunities may the job launch rack-local tasks,
//! and after `rack_delay` skips, arbitrary remote tasks. Locality improves,
//! but slots sit idle while waiting — the under-utilization the paper's §I
//! (and Coupling's authors) criticize.
//!
//! Reduce side: Hadoop 1.2.1's Fair Scheduler performs no reduce locality
//! reasoning — "the fair scheduling method ... randomly selects a reduce
//! task to be assigned to an available reduce slot" (paper §III).

use pnats_core::context::{MapSchedContext, ReduceSchedContext};
use pnats_core::placer::{Decision, SkipReason, TaskPlacer};
use pnats_core::types::JobId;
use pnats_net::NodeId;
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::HashMap;

/// Fair Scheduler with delay scheduling.
#[derive(Clone, Debug)]
pub struct FairDelayPlacer {
    /// Skipped scheduling opportunities before accepting rack-local maps.
    pub node_delay: u32,
    /// Skipped opportunities before accepting arbitrary remote maps.
    pub rack_delay: u32,
    skips: HashMap<JobId, u32>,
}

impl FairDelayPlacer {
    /// Delay thresholds in *scheduling opportunities* (slot offers). The
    /// defaults correspond to waiting roughly one heartbeat round of a
    /// mid-sized cluster for node locality and three for rack locality.
    pub fn new(node_delay: u32, rack_delay: u32) -> Self {
        assert!(rack_delay >= node_delay);
        Self { node_delay, rack_delay, skips: HashMap::new() }
    }

    /// Defaults tuned for a ~60 node cluster (one round ≈ 60 offers).
    pub fn hadoop_defaults() -> Self {
        Self::new(60, 180)
    }

    /// Current skip counter of a job (diagnostics).
    pub fn skips(&self, job: JobId) -> u32 {
        self.skips.get(&job).copied().unwrap_or(0)
    }
}

impl Default for FairDelayPlacer {
    fn default() -> Self {
        Self::hadoop_defaults()
    }
}

impl TaskPlacer for FairDelayPlacer {
    fn name(&self) -> &'static str {
        "fair"
    }

    fn place_map(
        &mut self,
        ctx: &MapSchedContext<'_>,
        node: NodeId,
        _rng: &mut SmallRng,
    ) -> Decision {
        // Node-local launch always allowed; resets the job's wait.
        if let Some(i) = ctx.candidates.iter().position(|c| c.is_local_to(node)) {
            self.skips.insert(ctx.job, 0);
            return Decision::Assign(i);
        }
        let skips = self.skips.entry(ctx.job).or_insert(0);
        if *skips >= self.node_delay {
            if let Some(i) = ctx
                .candidates
                .iter()
                .position(|c| c.is_rack_local_to(node, ctx.layout))
            {
                *skips = 0;
                return Decision::Assign(i);
            }
        }
        if *skips >= self.rack_delay {
            *skips = 0;
            return Decision::Assign(0); // any task, FIFO order within the job
        }
        *skips += 1;
        Decision::Skip(SkipReason::DelayBound)
    }

    fn place_reduce(
        &mut self,
        ctx: &ReduceSchedContext<'_>,
        _node: NodeId,
        rng: &mut SmallRng,
    ) -> Decision {
        // Uniform random choice among pending reduce tasks, assigned
        // unconditionally.
        Decision::Assign(rng.gen_range(0..ctx.candidates.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnats_core::context::{MapCandidate, ReduceCandidate};
    use pnats_core::types::{MapTaskId, ReduceTaskId};
    use pnats_net::{DistanceMatrix, Topology};
    use rand::SeedableRng;

    const GB: f64 = 1e9 / 8.0;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(5)
    }

    fn mcand(i: u32, replicas: Vec<NodeId>) -> MapCandidate {
        MapCandidate {
            task: MapTaskId { job: JobId(0), index: i },
            block_size: 100,
            replicas,
        }
    }

    #[test]
    fn local_task_launches_immediately() {
        let topo = Topology::multi_rack(2, 2, GB, GB);
        let h = DistanceMatrix::hops(&topo);
        let cands = vec![mcand(0, vec![NodeId(3)]), mcand(1, vec![NodeId(0)])];
        let free = vec![NodeId(0)];
        let ctx = MapSchedContext::new(JobId(0), &cands, &free, &h, topo.layout());
        let mut p = FairDelayPlacer::new(2, 4);
        assert_eq!(p.place_map(&ctx, NodeId(0), &mut rng()), Decision::Assign(1));
        assert_eq!(p.skips(JobId(0)), 0);
    }

    #[test]
    fn delays_then_accepts_rack_then_remote() {
        let topo = Topology::multi_rack(2, 2, GB, GB);
        let h = DistanceMatrix::hops(&topo);
        // Data on node 1 (rack 0). Offer slots on node 0 (same rack) and
        // node 2 (other rack).
        let cands = vec![mcand(0, vec![NodeId(1)])];
        let free = vec![NodeId(0), NodeId(2)];
        let layout = topo.layout();
        let ctx0 = MapSchedContext::new(JobId(0), &cands, &free, &h, layout);
        let mut p = FairDelayPlacer::new(2, 4);
        let mut r = rng();
        //

        // Offers on the off-rack node: skip until rack_delay reached.
        let wait = Decision::Skip(SkipReason::DelayBound);
        assert_eq!(p.place_map(&ctx0, NodeId(2), &mut r), wait); // skips=1
        assert_eq!(p.place_map(&ctx0, NodeId(2), &mut r), wait); // skips=2
        // Now node_delay (2) reached: rack-local allowed — node 0 qualifies.
        assert_eq!(p.place_map(&ctx0, NodeId(0), &mut r), Decision::Assign(0));
        assert_eq!(p.skips(JobId(0)), 0, "assignment resets the wait");

        // Off-rack node only: needs rack_delay (4) skips.
        let mut p = FairDelayPlacer::new(2, 4);
        for _ in 0..4 {
            assert_eq!(p.place_map(&ctx0, NodeId(2), &mut r), Decision::Skip(SkipReason::DelayBound));
        }
        assert_eq!(p.place_map(&ctx0, NodeId(2), &mut r), Decision::Assign(0));
    }

    #[test]
    fn reduce_choice_is_uniform_random() {
        let topo = Topology::single_rack(3, GB);
        let h = DistanceMatrix::hops(&topo);
        let cands: Vec<ReduceCandidate> = (0..3)
            .map(|i| ReduceCandidate {
                task: ReduceTaskId { job: JobId(0), index: i },
                sources: vec![],
            })
            .collect();
        let free = vec![NodeId(0)];
        let ctx = ReduceSchedContext::new(JobId(0), &cands, &free, &h, topo.layout())
            .map_phase(0.0, 0, 1)
            .reduce_phase(0, 3);
        let mut p = FairDelayPlacer::default();
        let mut r = rng();
        let mut counts = [0usize; 3];
        for _ in 0..600 {
            match p.place_reduce(&ctx, NodeId(0), &mut r) {
                Decision::Assign(i) => counts[i] += 1,
                Decision::Skip(_) => panic!("fair never skips reduces"),
            }
        }
        for c in counts {
            assert!((120..=280).contains(&c), "not uniform: {counts:?}");
        }
    }

    #[test]
    #[should_panic]
    fn inverted_delays_rejected() {
        FairDelayPlacer::new(10, 5);
    }
}
