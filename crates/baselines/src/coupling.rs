//! The Coupling Scheduler (Tan, Meng & Zhang — INFOCOM'13 / HPDC'12), as
//! described in the paper's §I, §III and related work:
//!
//! * **Map side**: "for an available map task slot, a randomly picked map
//!   task is assigned to it with a probability that balances data locality
//!   and resource utilization" — probabilistic like the paper's method, but
//!   on the *coarse* locality classes (node-local / rack-local / remote)
//!   rather than fine-grained transmission cost.
//! * **Reduce side**: "the reduce tasks can be postponed to be launched in
//!   order to be assigned to the data 'centrality' nodes and can wait at
//!   most three rounds of heartbeats before being assigned", where the
//!   centrality node minimizes transmission overhead computed from the
//!   **current** in-progress intermediate sizes (the estimation weakness
//!   §II-B2 fixes). Launches are *gradual*, coupled to map progress.

use pnats_core::context::{MapSchedContext, ReduceSchedContext};
use pnats_core::cost::reduce_cost;
use pnats_core::estimate::IntermediateEstimator;
use pnats_core::placer::{Decision, SkipReason, TaskPlacer};
use pnats_core::types::ReduceTaskId;
use pnats_net::{NodeId, RackLadderCost};
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::HashMap;

/// Coupling Scheduler reimplementation.
#[derive(Clone, Debug)]
pub struct CouplingPlacer {
    /// Launch probability for a rack-local (non node-local) map placement
    /// when no node-local candidate exists.
    pub p_rack: f64,
    /// Launch probability for a remote map placement.
    pub p_remote: f64,
    /// Heartbeat rounds a reduce waits for its centrality node.
    pub max_postpone: u32,
    /// Heartbeat interval in seconds (postponement is measured in rounds of
    /// heartbeats, i.e. wall-clock, not in slot offers).
    pub heartbeat_s: f64,
    /// First time each pending reduce was offered a non-centrality slot.
    first_offer: HashMap<ReduceTaskId, f64>,
}

impl CouplingPlacer {
    /// Coupling with the probabilities used in our experiments. Node-local
    /// placements always launch (probability 1).
    pub fn new(p_rack: f64, p_remote: f64, max_postpone: u32, heartbeat_s: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_rack) && (0.0..=1.0).contains(&p_remote));
        assert!(heartbeat_s > 0.0);
        Self { p_rack, p_remote, max_postpone, heartbeat_s, first_offer: HashMap::new() }
    }

    /// The configuration matching the paper's description: wait at most
    /// three rounds of (1 s) heartbeats.
    pub fn paper() -> Self {
        Self::new(0.8, 0.4, 3, 1.0)
    }

    /// Reduce launches are *coupled* to map progress: with fraction `f` of
    /// map work done, at most `ceil(f · reduces_total)` reduces may run.
    fn launch_permitted(ctx: &ReduceSchedContext<'_>) -> bool {
        let permitted = (ctx.job_map_progress * ctx.reduces_total as f64).ceil() as usize;
        ctx.reduces_launched < permitted
    }
}

impl Default for CouplingPlacer {
    fn default() -> Self {
        Self::paper()
    }
}

impl TaskPlacer for CouplingPlacer {
    fn name(&self) -> &'static str {
        "coupling"
    }

    fn place_map(
        &mut self,
        ctx: &MapSchedContext<'_>,
        node: NodeId,
        rng: &mut SmallRng,
    ) -> Decision {
        // A node-local candidate always launches — Coupling only relaxes
        // the *remote* launch decision (its contribution over Delay
        // Scheduling is launching remote maps probabilistically instead of
        // idling the slot).
        if let Some(i) = ctx.candidates.iter().position(|c| c.is_local_to(node)) {
            return Decision::Assign(i);
        }
        // No local work: randomly pick a pending task and launch it with a
        // coarse locality-class probability.
        let i = rng.gen_range(0..ctx.candidates.len());
        let c = &ctx.candidates[i];
        let p = if c.is_rack_local_to(node, ctx.layout) {
            self.p_rack
        } else {
            self.p_remote
        };
        if rng.gen::<f64>() < p {
            Decision::Assign(i)
        } else {
            Decision::Skip(SkipReason::DrawFailed)
        }
    }

    fn place_reduce(
        &mut self,
        ctx: &ReduceSchedContext<'_>,
        node: NodeId,
        rng: &mut SmallRng,
    ) -> Decision {
        // Same co-location avoidance as the paper's method (their [5, 15]).
        if ctx.job_reduce_nodes.contains(&node) {
            return Decision::Skip(SkipReason::Collocated);
        }
        if !Self::launch_permitted(ctx) {
            return Decision::Skip(SkipReason::PostponedReduce);
        }
        // Pick the pending reduce with the largest current shuffle input
        // (the one whose centrality matters most right now); random among
        // sourceless tasks.
        let est = IntermediateEstimator::CurrentSize;
        let (best_idx, _) = ctx
            .candidates
            .iter()
            .enumerate()
            .map(|(i, c)| (i, pnats_core::cost::reduce_total_input(c, est)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("contexts always carry >= 1 candidate");
        let cand = &ctx.candidates[best_idx];

        // Centrality test on *current* sizes and the COARSE node/rack cost
        // ladder — Coupling cannot see switch structure or congestion; that
        // granularity gap is precisely what the paper's method adds.
        let coarse = RackLadderCost::hadoop(ctx.layout.clone());
        let here = reduce_cost(cand, node, &coarse, est);
        let min_free = ctx
            .free_reduce_nodes
            .iter()
            .map(|&k| reduce_cost(cand, k, &coarse, est))
            .min_by(f64::total_cmp)
            .unwrap_or(0.0);
        let is_centrality = here <= min_free * 1.0001 + f64::EPSILON;

        let first = *self.first_offer.entry(cand.task).or_insert(ctx.now);
        let waited_out = ctx.now - first >= self.max_postpone as f64 * self.heartbeat_s;
        if is_centrality || waited_out {
            self.first_offer.remove(&cand.task);
            Decision::Assign(best_idx)
        } else {
            // Postponed: the task waits (at most `max_postpone` rounds of
            // heartbeats) for an offer on its centrality node; afterwards
            // it takes whatever slot comes next ("assigns a reduce task to
            // a random slot if it is postponed for a certain time", §III-C).
            let _ = rng;
            Decision::Skip(SkipReason::PostponedReduce)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnats_core::context::{MapCandidate, ReduceCandidate, ShuffleSource};
    use pnats_core::types::{JobId, MapTaskId};
    use pnats_net::{DistanceMatrix, Topology};
    use rand::SeedableRng;

    const GB: f64 = 1e9 / 8.0;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(11)
    }

    #[test]
    fn local_map_always_launches() {
        let topo = Topology::multi_rack(2, 2, GB, GB);
        let h = DistanceMatrix::hops(&topo);
        let cands = vec![MapCandidate {
            task: MapTaskId { job: JobId(0), index: 0 },
            block_size: 1,
            replicas: vec![NodeId(0)],
        }];
        let free = vec![NodeId(0)];
        let ctx = MapSchedContext::new(JobId(0), &cands, &free, &h, topo.layout());
        let mut p = CouplingPlacer::paper();
        let mut r = rng();
        for _ in 0..50 {
            assert_eq!(p.place_map(&ctx, NodeId(0), &mut r), Decision::Assign(0));
        }
    }

    #[test]
    fn remote_map_launch_rate_near_p_remote() {
        let topo = Topology::multi_rack(2, 2, GB, GB);
        let h = DistanceMatrix::hops(&topo);
        let cands = vec![MapCandidate {
            task: MapTaskId { job: JobId(0), index: 0 },
            block_size: 1,
            replicas: vec![NodeId(0)], // rack 0
        }];
        let free = vec![NodeId(2)];
        let ctx = MapSchedContext::new(JobId(0), &cands, &free, &h, topo.layout());
        let mut p = CouplingPlacer::new(0.8, 0.4, 3, 1.0);
        let mut r = rng();
        let hits = (0..2000)
            .filter(|_| p.place_map(&ctx, NodeId(2), &mut r).assigned().is_some())
            .count();
        let rate = hits as f64 / 2000.0;
        assert!((rate - 0.4).abs() < 0.05, "rate {rate}");
    }

    #[allow(clippy::too_many_arguments)]
    fn reduce_ctx<'a>(
        cands: &'a [ReduceCandidate],
        free: &'a [NodeId],
        cost: &'a DistanceMatrix,
        layout: &'a pnats_net::ClusterLayout,
        progress: f64,
        launched: usize,
        total: usize,
        now: f64,
    ) -> ReduceSchedContext<'a> {
        ReduceSchedContext::new(JobId(0), cands, free, cost, layout)
            .map_phase(progress, 0, 1)
            .reduce_phase(launched, total)
            .at(now)
    }

    #[test]
    fn reduce_launch_coupled_to_map_progress() {
        let topo = Topology::single_rack(3, GB);
        let h = DistanceMatrix::hops(&topo);
        let cands = vec![ReduceCandidate {
            task: ReduceTaskId { job: JobId(0), index: 0 },
            sources: vec![],
        }];
        let free = vec![NodeId(0)];
        let mut p = CouplingPlacer::paper();
        let mut r = rng();
        // 0% map progress, 0 of 4 launched: not permitted.
        let ctx = reduce_ctx(&cands, &free, &h, topo.layout(), 0.0, 0, 4, 0.0);
        assert_eq!(
            p.place_reduce(&ctx, NodeId(0), &mut r),
            Decision::Skip(SkipReason::PostponedReduce)
        );
        // 30% progress permits ceil(1.2)=2 launches; 1 already running.
        let ctx = reduce_ctx(&cands, &free, &h, topo.layout(), 0.3, 1, 4, 0.0);
        assert_eq!(p.place_reduce(&ctx, NodeId(0), &mut r), Decision::Assign(0));
        // ... but not a third.
        let ctx = reduce_ctx(&cands, &free, &h, topo.layout(), 0.3, 2, 4, 0.0);
        assert_eq!(
            p.place_reduce(&ctx, NodeId(0), &mut r),
            Decision::Skip(SkipReason::PostponedReduce)
        );
    }

    #[test]
    fn reduce_waits_for_centrality_then_gives_up() {
        // Data centre: all current bytes on node 1; node 0 is offered.
        let topo = Topology::multi_rack(2, 2, GB, GB);
        let h = DistanceMatrix::hops(&topo);
        let cands = vec![ReduceCandidate {
            task: ReduceTaskId { job: JobId(0), index: 0 },
            sources: vec![ShuffleSource {
                node: NodeId(1),
                current_bytes: 100.0,
                input_read: 50,
                input_total: 100,
            }],
        }];
        // Node 1 is free too: it is the centrality node, node 0 is not.
        let free = vec![NodeId(0), NodeId(1)];
        let mut p = CouplingPlacer::paper();
        let mut r = rng();
        // Offers on non-centrality node 0 within three heartbeat rounds
        // (1 s each) are postponed...
        for now in [0.0, 1.0, 2.0] {
            let ctx = reduce_ctx(&cands, &free, &h, topo.layout(), 1.0, 0, 1, now);
            assert_eq!(
                p.place_reduce(&ctx, NodeId(0), &mut r),
                Decision::Skip(SkipReason::PostponedReduce),
                "t={now}"
            );
        }
        // ...after the three-round budget, accepted anywhere.
        let ctx = reduce_ctx(&cands, &free, &h, topo.layout(), 1.0, 0, 1, 3.0);
        assert_eq!(p.place_reduce(&ctx, NodeId(0), &mut r), Decision::Assign(0));
    }

    #[test]
    fn reduce_takes_centrality_node_immediately() {
        let topo = Topology::multi_rack(2, 2, GB, GB);
        let h = DistanceMatrix::hops(&topo);
        let cands = vec![ReduceCandidate {
            task: ReduceTaskId { job: JobId(0), index: 0 },
            sources: vec![ShuffleSource {
                node: NodeId(1),
                current_bytes: 100.0,
                input_read: 50,
                input_total: 100,
            }],
        }];
        let free = vec![NodeId(0), NodeId(1)];
        let mut p = CouplingPlacer::paper();
        let mut r = rng();
        let ctx = reduce_ctx(&cands, &free, &h, topo.layout(), 1.0, 0, 1, 0.0);
        assert_eq!(p.place_reduce(&ctx, NodeId(1), &mut r), Decision::Assign(0));
    }

    #[test]
    fn reduce_collocation_avoided() {
        let topo = Topology::single_rack(2, GB);
        let h = DistanceMatrix::hops(&topo);
        let cands = vec![ReduceCandidate {
            task: ReduceTaskId { job: JobId(0), index: 0 },
            sources: vec![],
        }];
        let free = vec![NodeId(0)];
        let running = vec![NodeId(0)];
        let ctx = ReduceSchedContext::new(JobId(0), &cands, &free, &h, topo.layout())
            .running_on(&running)
            .map_phase(1.0, 1, 1);
        let mut p = CouplingPlacer::paper();
        assert_eq!(
            p.place_reduce(&ctx, NodeId(0), &mut rng()),
            Decision::Skip(SkipReason::Collocated)
        );
    }
}
