#![warn(missing_docs)]
//! # pnats-baselines — the schedulers the paper compares against
//!
//! Every baseline implements [`pnats_core::placer::TaskPlacer`], so the
//! simulator and the threaded engine can swap policies freely:
//!
//! * [`fair::FairDelayPlacer`] — Hadoop 1.2.1's Fair Scheduler behaviour at
//!   the task level: **delay scheduling** for map tasks (wait a bounded
//!   number of scheduling opportunities for a node-local, then rack-local
//!   slot) and **random** reduce placement. One of the paper's two
//!   evaluated baselines.
//! * [`coupling::CouplingPlacer`] — Tan et al.'s Coupling Scheduler
//!   (INFOCOM'13): probabilistic map placement on *coarse* locality classes,
//!   reduce launches coupled to map progress, placement at the data
//!   "centrality" node computed from **current** intermediate sizes, and at
//!   most three heartbeat postponements. The paper's other baseline.
//! * [`fifo::FifoGreedyPlacer`] — locality-greedy instant assignment, the
//!   stock FIFO scheduler's task-level behaviour.
//! * [`mincost::MinCostPlacer`] — *deterministic* fine-grained min-cost
//!   placement: the paper's cost model without the probabilistic
//!   relaxation. Ablation: isolates what the Bernoulli gate buys.
//! * [`random::RandomPlacer`] — uniform random placement; the floor.
//! * [`larts::LartsPlacer`] — a LARTS-style reduce placer (Hammoud &
//!   Sakr, CloudCom'11) from the related-work section: schedule each
//!   reduce as close to the bulk of its input as possible.
//! * [`quincy::QuincyPlacer`] — a Quincy-style global min-cost-matching
//!   scheduler (Isard et al., SOSP'09, the paper's [20]), built on this
//!   crate's own min-cost max-flow solver ([`mcmf`]).

pub mod coupling;
pub mod mcmf;
pub mod fair;
pub mod fifo;
pub mod larts;
pub mod mincost;
pub mod quincy;
pub mod random;

pub use coupling::CouplingPlacer;
pub use quincy::QuincyPlacer;
pub use fair::FairDelayPlacer;
pub use fifo::FifoGreedyPlacer;
pub use larts::LartsPlacer;
pub use mincost::MinCostPlacer;
pub use random::RandomPlacer;
