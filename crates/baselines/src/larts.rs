//! A LARTS-style placer (Hammoud & Sakr, CloudCom'11 — the paper's [4]).
//!
//! LARTS "schedules the reduce tasks as close to their maximum amount of
//! input data as possible": each reduce task has a *sweet spot* — the node
//! hosting the largest share of its (estimated) shuffle input — and the
//! scheduler waits a bounded number of offers for a slot there or in its
//! rack before settling. Map tasks use greedy locality (LARTS is a
//! reduce-side scheduler).

use pnats_core::context::{MapSchedContext, ReduceSchedContext};
use pnats_core::estimate::IntermediateEstimator;
use pnats_core::placer::{Decision, SkipReason, TaskPlacer};
use pnats_core::types::ReduceTaskId;
use pnats_net::NodeId;
use rand::rngs::SmallRng;
use std::collections::HashMap;

/// Reduce-locality-aware placer.
#[derive(Clone, Debug)]
pub struct LartsPlacer {
    /// Offers a reduce task declines while waiting for its sweet spot.
    pub max_wait: u32,
    waited: HashMap<ReduceTaskId, u32>,
}

impl LartsPlacer {
    /// LARTS waiting up to `max_wait` offers per reduce task.
    pub fn new(max_wait: u32) -> Self {
        Self { max_wait, waited: HashMap::new() }
    }

    /// The node holding the largest estimated share of the candidate's
    /// input, if any source reported bytes.
    fn sweet_spot(c: &pnats_core::context::ReduceCandidate) -> Option<NodeId> {
        let mut per_node: HashMap<NodeId, f64> = HashMap::new();
        for s in &c.sources {
            let est = IntermediateEstimator::ProgressExtrapolated.estimate(s);
            *per_node.entry(s.node).or_insert(0.0) += est;
        }
        per_node
            .into_iter()
            .filter(|(_, v)| *v > 0.0)
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(n, _)| n)
    }
}

impl Default for LartsPlacer {
    fn default() -> Self {
        Self::new(3)
    }
}

impl TaskPlacer for LartsPlacer {
    fn name(&self) -> &'static str {
        "larts"
    }

    fn place_map(
        &mut self,
        ctx: &MapSchedContext<'_>,
        node: NodeId,
        _rng: &mut SmallRng,
    ) -> Decision {
        // Greedy locality, as in the FIFO baseline.
        if let Some(i) = ctx.candidates.iter().position(|c| c.is_local_to(node)) {
            return Decision::Assign(i);
        }
        if let Some(i) = ctx
            .candidates
            .iter()
            .position(|c| c.is_rack_local_to(node, ctx.layout))
        {
            return Decision::Assign(i);
        }
        Decision::Assign(0)
    }

    fn place_reduce(
        &mut self,
        ctx: &ReduceSchedContext<'_>,
        node: NodeId,
        _rng: &mut SmallRng,
    ) -> Decision {
        if ctx.job_reduce_nodes.contains(&node) {
            return Decision::Skip(SkipReason::Collocated);
        }
        // First preference: a candidate whose sweet spot IS this node.
        for (i, c) in ctx.candidates.iter().enumerate() {
            if Self::sweet_spot(c) == Some(node) {
                self.waited.remove(&c.task);
                return Decision::Assign(i);
            }
        }
        // Second: a candidate whose sweet spot shares this node's rack.
        for (i, c) in ctx.candidates.iter().enumerate() {
            if let Some(spot) = Self::sweet_spot(c) {
                if ctx.layout.same_rack(spot, node) {
                    self.waited.remove(&c.task);
                    return Decision::Assign(i);
                }
            }
        }
        // Otherwise: head-of-line candidate waits up to max_wait offers.
        let c = &ctx.candidates[0];
        let w = self.waited.entry(c.task).or_insert(0);
        if *w >= self.max_wait || Self::sweet_spot(c).is_none() {
            self.waited.remove(&c.task);
            Decision::Assign(0)
        } else {
            *w += 1;
            Decision::Skip(SkipReason::PostponedReduce)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnats_core::context::{ReduceCandidate, ShuffleSource};
    use pnats_core::types::JobId;
    use pnats_net::{DistanceMatrix, Topology};
    use rand::SeedableRng;

    const GB: f64 = 1e9 / 8.0;

    fn cand(i: u32, sources: Vec<(u32, f64)>) -> ReduceCandidate {
        ReduceCandidate {
            task: ReduceTaskId { job: JobId(0), index: i },
            sources: sources
                .into_iter()
                .map(|(n, b)| ShuffleSource {
                    node: NodeId(n),
                    current_bytes: b,
                    input_read: 1,
                    input_total: 1,
                })
                .collect(),
        }
    }

    #[test]
    fn takes_sweet_spot_node() {
        let topo = Topology::multi_rack(2, 2, GB, GB);
        let h = DistanceMatrix::hops(&topo);
        let cands = vec![cand(0, vec![(1, 100.0), (2, 10.0)])];
        let free = vec![NodeId(1)];
        let ctx = ReduceSchedContext::new(JobId(0), &cands, &free, &h, topo.layout())
            .map_phase(1.0, 1, 1);
        let mut p = LartsPlacer::default();
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(p.place_reduce(&ctx, NodeId(1), &mut rng), Decision::Assign(0));
    }

    #[test]
    fn waits_then_settles_far_from_sweet_spot() {
        let topo = Topology::multi_rack(2, 2, GB, GB);
        let h = DistanceMatrix::hops(&topo);
        // Sweet spot is node 0 (rack 0); offer slots on node 2 (rack 1).
        let cands = vec![cand(0, vec![(0, 100.0)])];
        let free = vec![NodeId(2)];
        let ctx = ReduceSchedContext::new(JobId(0), &cands, &free, &h, topo.layout())
            .map_phase(1.0, 1, 1);
        let mut p = LartsPlacer::new(2);
        let mut rng = SmallRng::seed_from_u64(0);
        let wait = Decision::Skip(SkipReason::PostponedReduce);
        assert_eq!(p.place_reduce(&ctx, NodeId(2), &mut rng), wait);
        assert_eq!(p.place_reduce(&ctx, NodeId(2), &mut rng), wait);
        assert_eq!(p.place_reduce(&ctx, NodeId(2), &mut rng), Decision::Assign(0));
    }

    #[test]
    fn sourceless_candidate_assigned_immediately() {
        let topo = Topology::single_rack(2, GB);
        let h = DistanceMatrix::hops(&topo);
        let cands = vec![cand(0, vec![])];
        let free = vec![NodeId(0)];
        let ctx = ReduceSchedContext::new(JobId(0), &cands, &free, &h, topo.layout())
            .map_phase(0.0, 0, 1);
        let mut p = LartsPlacer::default();
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(p.place_reduce(&ctx, NodeId(0), &mut rng), Decision::Assign(0));
    }
}
