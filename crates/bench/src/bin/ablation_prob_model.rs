//! Ablation: alternative probability models (§V future work) and the
//! deterministic min-cost strawman.
//!
//! "We will further explore various probabilistic computation models for
//! the probability determination and study their impacts on the job
//! performance" — here they are: exponential (the paper's Formula 4/5),
//! reciprocal, linear and sigmoid, plus the fully deterministic greedy
//! min-cost placer (the probabilistic relaxation removed entirely).

use pnats_bench::harness::{cloud_config, make_placer, make_probabilistic, mean_jct, SchedulerKind};
use pnats_core::estimate::IntermediateEstimator;
use pnats_core::prob::ProbabilityModel;
use pnats_metrics::render_table;
use pnats_sim::{JobInput, Simulation, TaskKind};
use pnats_workloads::{table2_batch, AppKind};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    let inputs = JobInput::from_batch(&table2_batch(AppKind::Wordcount));
    let mut rows = Vec::new();
    for model in ProbabilityModel::ALL {
        let cfg = cloud_config(seed);
        let placer =
            make_probabilistic(0.4, model, IntermediateEstimator::ProgressExtrapolated);
        let r = Simulation::new(cfg, placer).run(&inputs);
        let maps = r.trace.locality_of(TaskKind::Map);
        rows.push(vec![
            model.label().to_string(),
            format!("{}/{}", r.jobs_completed, r.jobs_submitted),
            format!("{:.0}", mean_jct(&r)),
            format!("{:.1}", maps.pct_node_local()),
        ]);
    }
    {
        let cfg = cloud_config(seed);
        let placer = make_placer(SchedulerKind::MinCost, &cfg);
        let r = Simulation::new(cfg, placer).run(&inputs);
        let maps = r.trace.locality_of(TaskKind::Map);
        rows.push(vec![
            "deterministic-mincost".into(),
            format!("{}/{}", r.jobs_completed, r.jobs_submitted),
            format!("{:.0}", mean_jct(&r)),
            format!("{:.1}", maps.pct_node_local()),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Probability-model ablation — Wordcount batch",
            &["model", "finished", "mean JCT (s)", "% local maps"],
            &rows,
        )
    );
}
