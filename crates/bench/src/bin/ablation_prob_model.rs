//! Ablation: alternative probability models (§V future work) and the
//! deterministic min-cost strawman.
//!
//! "We will further explore various probabilistic computation models for
//! the probability determination and study their impacts on the job
//! performance" — here they are: exponential (the paper's Formula 4/5),
//! reciprocal, linear and sigmoid, plus the fully deterministic greedy
//! min-cost placer (the probabilistic relaxation removed entirely).

use pnats_bench::harness::{cloud_config, mean_jct, run_matrix, PlacerSpec, Run, SchedulerKind};
use pnats_core::estimate::IntermediateEstimator;
use pnats_core::prob::ProbabilityModel;
use pnats_metrics::render_table;
use pnats_sim::{JobInput, TaskKind};
use pnats_workloads::{table2_batch, AppKind};

fn main() {
    pnats_bench::usage_on_help("[seed]");
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    let inputs = JobInput::from_batch(&table2_batch(AppKind::Wordcount));
    // 4 probability models + the deterministic min-cost strawman.
    let mut runs: Vec<Run> = ProbabilityModel::ALL
        .iter()
        .map(|&model| {
            Run::with_spec(
                PlacerSpec::Probabilistic {
                    p_min: 0.4,
                    model,
                    estimator: IntermediateEstimator::ProgressExtrapolated,
                },
                cloud_config(seed),
                inputs.clone(),
            )
        })
        .collect();
    runs.push(Run::new(SchedulerKind::MinCost, cloud_config(seed), inputs));
    let reports = run_matrix(runs);

    let labels = ProbabilityModel::ALL
        .iter()
        .map(|m| m.label().to_string())
        .chain(std::iter::once("deterministic-mincost".to_string()));
    let mut rows = Vec::new();
    for (label, r) in labels.zip(&reports) {
        let maps = r.trace.locality_of(TaskKind::Map);
        rows.push(vec![
            label,
            format!("{}/{}", r.jobs_completed, r.jobs_submitted),
            format!("{:.0}", mean_jct(r)),
            format!("{:.1}", maps.pct_node_local()),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Probability-model ablation — Wordcount batch",
            &["model", "finished", "mean JCT (s)", "% local maps"],
            &rows,
        )
    );
}
