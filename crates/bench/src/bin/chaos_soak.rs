//! Chaos soak: the cluster runtime under an escalating ladder of wire
//! faults, every stage gated by the full oracle stack. Each stage runs
//! WordCount through [`run_cluster_chaos`] with a seeded [`ChaosPlan`]
//! and must (1) complete, (2) produce output byte-identical to a
//! fault-free engine run of the same seed, (3) pass the report oracle
//! ([`check_cluster_report`]), and (4) pass the simulator's
//! completion-ledger oracle ([`pnats_sim::check_cluster_run`]). Any gate
//! failure is fatal — this is the robustness regression CI leans on.
//!
//! Determinism artifact: live chaos traffic is timing-shaped (how many
//! frames a connection carries depends on scheduling), so the replayable
//! record is [`ChaosPlan::simulate`] — the plan expanded over a fixed
//! traffic envelope. The soak expands it twice, requires byte-identical
//! JSONL, and writes it to `chaos_soak_trace.jsonl` for CI to diff.
//!
//! The final rung leaves the in-process harness entirely: a real
//! `pnats-cluster tracker` OS process is SIGKILLed mid-job and restarted
//! over its journal (see [`pnats_bench::failover`]), with the same fatal
//! engine byte-parity gate as every other stage.
//!
//! Usage: `chaos_soak [seed] [--smoke]`. `--smoke` shrinks the input so
//! the whole ladder fits in a CI smoke budget.

use pnats_bench::failover::{cluster_bin, run_kill_trial, KillTrial};
use pnats_bench::usage_on_help;
use pnats_cluster::{
    check_cluster_report, placer_by_name, run_cluster_chaos, ChaosFault, ClusterConfig, JobSpec,
    LinkRule,
};
use pnats_engine::MapReduceEngine;
use pnats_rpc::{BreakerPolicy, ChaosPlan, RetryPolicy};
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn words_input(kib: usize) -> String {
    const WORDS: &[&str] = &[
        "soak", "ladder", "escalate", "corrupt", "truncate", "reset", "partition", "breaker",
        "degrade", "recover",
    ];
    let mut s = String::new();
    let mut x = 0x9E6C_63D0_7698_5FFDu64;
    while s.len() < kib * 1024 {
        for _ in 0..10 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s.push_str(WORDS[(x >> 33) as usize % WORDS.len()]);
            s.push(' ');
        }
        s.push('\n');
    }
    s
}

/// The escalation ladder: stage index, label, plan. Later stages subsume
/// harsher faults; stage 0 is the control (transparent proxies).
fn ladder(seed: u64) -> Vec<(&'static str, ChaosPlan)> {
    vec![
        ("clean", ChaosPlan::none()),
        (
            "shaped",
            ChaosPlan::new(seed)
                .with_rule(LinkRule::always(ChaosFault::Delay(Duration::from_millis(1))))
                .with_rule(LinkRule::on(
                    "data:w1",
                    ChaosFault::Throttle { chunk_bytes: 64, pause: Duration::from_micros(200) },
                )),
        ),
        (
            "dirty",
            ChaosPlan::new(seed)
                .with_rule(LinkRule::always(ChaosFault::CorruptFrames { p: 0.03 }))
                .with_rule(LinkRule::on("data:w2", ChaosFault::TruncateFrames { p: 0.02 })),
        ),
        (
            "lossy",
            ChaosPlan::new(seed)
                .with_rule(LinkRule::always(ChaosFault::DropFrames { p: 0.03 }))
                .with_rule(LinkRule::on("ctl:w1", ChaosFault::ResetAfterFrames(40)).conns(0, Some(1))),
        ),
        (
            "partitioned",
            ChaosPlan::new(seed)
                .with_rule(LinkRule::on("data:w0", ChaosFault::PartitionFromUpstream)),
        ),
    ]
}

fn main() -> ExitCode {
    usage_on_help("[seed] [--smoke]");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed: u64 =
        args.iter().find(|a| !a.starts_with("--")).and_then(|s| s.parse().ok()).unwrap_or(42);
    let wall = Instant::now();

    let cfg = ClusterConfig {
        n_nodes: 3,
        heartbeat: Duration::from_millis(4),
        io_timeout: Duration::from_millis(100),
        retry: RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(25),
            seed,
        },
        breaker: BreakerPolicy { threshold: 2, cooldown: 2 },
        max_wall: Duration::from_secs(60),
        seed,
        ..ClusterConfig::default()
    };
    let n_reduces = 3;
    let input = words_input(if smoke { 16 } else { 64 });

    // Fault-free engine reference: every stage must reproduce these bytes.
    let engine = MapReduceEngine::new(cfg.engine_config());
    let expected = engine.run(
        &JobSpec::WordCount.job(n_reduces),
        &input,
        placer_by_name("paper", cfg.heartbeat.as_secs_f64()).unwrap(),
    );
    if expected.failed {
        eprintln!("chaos_soak: engine reference run failed");
        return ExitCode::FAILURE;
    }

    // Determinism gate on the replayable artifact: the same plan expanded
    // twice over the same envelope must be byte-identical JSONL.
    let links = ["ctl:w0", "ctl:w1", "ctl:w2", "data:w0", "data:w1", "data:w2"];
    let mut artifact = String::new();
    for (name, plan) in ladder(seed) {
        let a = plan.simulate(&links, 4, 64);
        let b = plan.simulate(&links, 4, 64);
        if a != b {
            eprintln!("chaos_soak: stage {name}: simulate() is not deterministic");
            return ExitCode::FAILURE;
        }
        artifact.push_str(&a);
    }
    std::fs::write("chaos_soak_trace.jsonl", &artifact).expect("write chaos_soak_trace.jsonl");

    for (stage, (name, plan)) in ladder(seed).into_iter().enumerate() {
        let t = Instant::now();
        let placer = placer_by_name("paper", cfg.heartbeat.as_secs_f64()).unwrap();
        let (report, net) =
            run_cluster_chaos(&cfg, &JobSpec::WordCount, n_reduces, &input, placer, plan);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        if report.failed {
            eprintln!("chaos_soak: stage {stage} ({name}): job failed");
            return ExitCode::FAILURE;
        }
        if let Err(e) = check_cluster_report(&report) {
            eprintln!("chaos_soak: stage {stage} ({name}): report oracle: {e}");
            return ExitCode::FAILURE;
        }
        if let Err(e) = pnats_sim::check_cluster_run(
            &report.counters,
            &report.completions,
            report.n_maps,
            report.n_reduces,
            report.failed,
        ) {
            eprintln!("chaos_soak: stage {stage} ({name}): completion-ledger oracle: {e}");
            return ExitCode::FAILURE;
        }
        if report.output != expected.output {
            eprintln!("chaos_soak: stage {stage} ({name}): OUTPUT DIVERGED from engine");
            return ExitCode::FAILURE;
        }
        let c = &report.counters;
        if name == "partitioned" && (c.breaker_trips == 0 || c.reexecuted_maps == 0) {
            eprintln!(
                "chaos_soak: stage {stage} ({name}): partition left no breaker/re-execution \
                 trail: {c:?}"
            );
            return ExitCode::FAILURE;
        }
        println!(
            "chaos_soak stage={stage} name={name} ok wall_ms={ms:.0} events={} retries={} \
             corrupt={} trips={} closes={} alt={} reexec={}",
            net.events().len(),
            c.rpc_retries,
            c.corrupt_frames,
            c.breaker_trips,
            c.breaker_closes,
            c.alt_source_fetches,
            c.reexecuted_maps,
        );
    }

    // Final rung: the tracker itself dies. A real OS-process tracker is
    // SIGKILLed mid-job and restarted on the same address over its
    // journal; byte parity with the engine stays fatal.
    let t = Instant::now();
    match tracker_kill_stage(seed) {
        Ok(()) => println!(
            "chaos_soak stage=5 name=tracker-kill ok wall_ms={:.0}",
            t.elapsed().as_secs_f64() * 1e3
        ),
        Err(e) => {
            eprintln!("chaos_soak: stage 5 (tracker-kill): {e}");
            return ExitCode::FAILURE;
        }
    }

    println!(
        "chaos_soak ok seed={seed} smoke={smoke} stages=6 artifact=chaos_soak_trace.jsonl \
         total_s={:.2}",
        wall.elapsed().as_secs_f64()
    );
    ExitCode::SUCCESS
}

/// SIGKILL a journaled OS-process tracker mid-map-wave and gate recovery
/// on the engine reference. Pacing knobs differ from the wire stages —
/// the kill must land mid-job, so maps are slowed to ~320ms each.
fn tracker_kill_stage(seed: u64) -> Result<(), String> {
    let bin = cluster_bin()?;
    let trial = KillTrial {
        seed,
        label: "tracker-kill".to_string(),
        kill_after: Duration::from_millis(200),
        kill_worker: false,
        nodes: 4,
        reduces: 3,
        heartbeat_ms: 3,
        block_bytes: 32 << 10,
        cpu_us_per_kib: 10_000,
    };
    let cfg = ClusterConfig {
        n_nodes: trial.nodes,
        heartbeat: Duration::from_millis(trial.heartbeat_ms),
        block_bytes: trial.block_bytes,
        cpu_us_per_kib: trial.cpu_us_per_kib,
        seed,
        ..ClusterConfig::default()
    };
    let input = words_input(384); // 12 maps of 32 KiB
    let expected = MapReduceEngine::new(cfg.engine_config()).run(
        &JobSpec::WordCount.job(trial.reduces),
        &input,
        placer_by_name("paper", cfg.heartbeat.as_secs_f64()).unwrap(),
    );
    if expected.failed {
        return Err("engine reference run failed".into());
    }
    let dir = std::env::temp_dir().join(format!("pnats-soak-kill-{}", std::process::id()));
    let result = run_kill_trial(&bin, &dir, &trial, &input, &expected.output);
    let _ = std::fs::remove_dir_all(&dir);
    result.map(|_| ())
}
