//! Ablation: HDFS replication factor (the paper fixes 2; we sweep 1–3).
//!
//! More replicas mean more nodes can host any map locally, raising
//! locality and shrinking the placement problem; replication 1 is the
//! stress case where every placement decision is all-or-nothing.

use pnats_bench::harness::{hdfs_config, make_placer, mean_jct, PAPER_SCHEDULERS};
use pnats_metrics::render_table;
use pnats_sim::{JobInput, Simulation, TaskKind};
use pnats_workloads::{table2_batch, AppKind};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    let inputs = JobInput::from_batch(&table2_batch(AppKind::Wordcount));
    let mut rows = Vec::new();
    for replication in [1usize, 2, 3] {
        for kind in PAPER_SCHEDULERS {
            let mut cfg = hdfs_config(seed);
            cfg.replication = replication;
            let placer = make_placer(kind, &cfg);
            let r = Simulation::new(cfg, placer).run(&inputs);
            let maps = r.trace.locality_of(TaskKind::Map);
            rows.push(vec![
                replication.to_string(),
                kind.label().to_string(),
                format!("{:.0}", mean_jct(&r)),
                format!("{:.1}", maps.pct_node_local()),
            ]);
        }
    }
    print!(
        "{}",
        render_table(
            "Replication-factor sweep — Wordcount batch (HDFS layout)",
            &["replication", "scheduler", "mean JCT (s)", "% local maps"],
            &rows,
        )
    );
}
