//! Ablation: HDFS replication factor (the paper fixes 2; we sweep 1–3).
//!
//! More replicas mean more nodes can host any map locally, raising
//! locality and shrinking the placement problem; replication 1 is the
//! stress case where every placement decision is all-or-nothing.

use pnats_bench::harness::{hdfs_config, mean_jct, run_matrix, Run, PAPER_SCHEDULERS};
use pnats_metrics::render_table;
use pnats_sim::{JobInput, TaskKind};
use pnats_workloads::{table2_batch, AppKind};

fn main() {
    pnats_bench::usage_on_help("[seed]");
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    let inputs = JobInput::from_batch(&table2_batch(AppKind::Wordcount));
    let cells: Vec<(usize, _)> = [1usize, 2, 3]
        .into_iter()
        .flat_map(|replication| PAPER_SCHEDULERS.into_iter().map(move |kind| (replication, kind)))
        .collect();
    let runs = cells
        .iter()
        .map(|&(replication, kind)| {
            let mut cfg = hdfs_config(seed);
            cfg.replication = replication;
            Run::new(kind, cfg, inputs.clone())
        })
        .collect();
    let reports = run_matrix(runs);

    let mut rows = Vec::new();
    for ((replication, kind), r) in cells.iter().zip(&reports) {
        let maps = r.trace.locality_of(TaskKind::Map);
        rows.push(vec![
            replication.to_string(),
            kind.label().to_string(),
            format!("{:.0}", mean_jct(r)),
            format!("{:.1}", maps.pct_node_local()),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Replication-factor sweep — Wordcount batch (HDFS layout)",
            &["replication", "scheduler", "mean JCT (s)", "% local maps"],
            &rows,
        )
    );
}
