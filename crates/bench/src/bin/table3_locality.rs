//! Table III: percentage of local-node / local-rack / remote tasks under
//! the three schedulers.
//!
//! Paper (map + reduce tasks pooled, single-rack testbed): probabilistic
//! 89.84 % / coupling 88.30 % / fair 85.59 % node-local, the rest
//! rack-local, zero remote. Run under the stock-HDFS layout the paper's
//! storage setup describes. We print map-only and pooled tallies; our
//! reduce locality uses the dominant-source definition (see DESIGN.md),
//! which is stricter than the paper's informal "machine with data for that
//! task".

use pnats_bench::harness::{batch_runs, hdfs_config, run_matrix, PAPER_SCHEDULERS};
use pnats_metrics::render_table;
use pnats_sim::TaskKind;

fn main() {
    pnats_bench::usage_on_help("[seed]");
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    let runs = PAPER_SCHEDULERS
        .iter()
        .flat_map(|kind| batch_runs(*kind, || hdfs_config(seed)))
        .collect();
    let all_reports = run_matrix(runs);

    let mut rows = Vec::new();
    for (reports, kind) in all_reports.chunks(3).zip(PAPER_SCHEDULERS) {
        let mut all = pnats_metrics::LocalityCounter::default();
        let mut maps = pnats_metrics::LocalityCounter::default();
        for r in reports {
            all += r.trace.locality_all();
            maps += r.trace.locality_of(TaskKind::Map);
        }
        rows.push(vec![
            kind.label().to_string(),
            format!("{:.2}", all.pct_node_local()),
            format!("{:.2}", all.pct_rack_local()),
            format!("{:.2}", all.pct_remote()),
            format!("{:.2}", maps.pct_node_local()),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Table III — data locality (% of tasks, HDFS layout)",
            &["scheduler", "% local node", "% local rack", "% remote", "% local (maps only)"],
            &rows,
        )
    );
    println!();
    println!("paper:  probabilistic 89.84 / coupling 88.30 / fair 85.59 % local node; 0 % remote");
}
