//! Tracker-failover bench: SIGKILL a real `pnats-cluster tracker` OS
//! process mid-job at escalating offsets (first map wave, wave boundary,
//! then compound tracker+worker kills mid and late reduce), restart it on
//! the *same address* over its journal, and gate the recovered run on the
//! full oracle stack (see [`pnats_bench::failover::run_kill_trial`]):
//!
//! * the job completes with output byte-identical to a fault-free engine
//!   run of the same seed,
//! * every surviving worker process is still alive at restart time —
//!   orphaned, not dead — and re-attaches instead of re-registering,
//! * the journal replays cleanly and deterministically,
//! * exactly one restart and one replay are booked.
//!
//! Also measures **failover latency** — tracker kill → first
//! post-recovery assignment — and merges mean/p99 into
//! `BENCH_cluster.json` (run `cluster_smoke` first to seed the file).
//!
//! Usage: `tracker_failover [seed] [--smoke]`. `--smoke` runs two kill
//! points instead of four.

use pnats_bench::failover::{cluster_bin, run_kill_trial, KillTrial};
use pnats_bench::usage_on_help;
use pnats_cluster::{placer_by_name, ClusterConfig, JobSpec};
use pnats_engine::MapReduceEngine;
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn words_input(kib: usize) -> String {
    const WORDS: &[&str] = &[
        "failover", "journal", "replay", "reattach", "orphan", "epoch", "ledger", "tracker",
        "recover", "assign",
    ];
    let mut s = String::new();
    let mut x = 0xA076_1D64_78BD_642Fu64;
    while s.len() < kib * 1024 {
        for _ in 0..10 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s.push_str(WORDS[(x >> 33) as usize % WORDS.len()]);
            s.push(' ');
        }
        s.push('\n');
    }
    s
}

const NODES: usize = 4;
const REDUCES: usize = 3;
const HEARTBEAT_MS: u64 = 3;
const BLOCK_BYTES: usize = 32 << 10;
const CPU_US_PER_KIB: u64 = 10_000;
const INPUT_KIB: usize = 384; // 12 maps of 32 KiB, ~320ms of pacing each

fn trial(seed: u64, label: &str, kill_ms: u64, kill_worker: bool) -> KillTrial {
    KillTrial {
        seed,
        label: label.to_string(),
        kill_after: Duration::from_millis(kill_ms),
        kill_worker,
        nodes: NODES,
        reduces: REDUCES,
        heartbeat_ms: HEARTBEAT_MS,
        block_bytes: BLOCK_BYTES,
        cpu_us_per_kib: CPU_US_PER_KIB,
    }
}

/// Merge `failover_ms_mean`/`failover_ms_p99` into `BENCH_cluster.json`
/// (written by `cluster_smoke`), creating a minimal file if absent.
fn merge_bench_json(mean: f64, p99: f64, trials: usize) -> Result<(), String> {
    let path = "BENCH_cluster.json";
    let fields = format!(
        "  \"failover_trials\": {trials},\n  \"failover_ms_mean\": {mean:.1},\n  \
         \"failover_ms_p99\": {p99:.1}\n}}\n"
    );
    let json = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            let body: String = trimmed
                .strip_suffix('}')
                .ok_or("BENCH_cluster.json does not end in '}'")?
                .lines()
                .filter(|l| !l.contains("\"failover_")) // idempotent re-merge
                .collect::<Vec<_>>()
                .join("\n");
            let body = body.trim_end().trim_end_matches(',');
            format!("{body},\n{fields}")
        }
        Err(_) => format!("{{\n  \"bench\": \"tracker_failover\",\n{fields}"),
    };
    pnats_obs::json::validate_json(&json).map_err(|e| format!("malformed merged json: {e}"))?;
    std::fs::write(path, &json).map_err(|e| format!("write {path}: {e}"))?;
    Ok(())
}

fn main() -> ExitCode {
    usage_on_help("[seed] [--smoke]");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed: u64 =
        args.iter().find(|a| !a.starts_with("--")).and_then(|s| s.parse().ok()).unwrap_or(42);
    let wall = Instant::now();

    let bin = match cluster_bin() {
        Ok(b) => b,
        Err(e) => {
            eprintln!("tracker_failover: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Fault-free engine reference for the byte-parity gate.
    let cfg = ClusterConfig {
        n_nodes: NODES,
        heartbeat: Duration::from_millis(HEARTBEAT_MS),
        block_bytes: BLOCK_BYTES,
        cpu_us_per_kib: CPU_US_PER_KIB,
        seed,
        ..ClusterConfig::default()
    };
    let input = words_input(INPUT_KIB);
    let expected = MapReduceEngine::new(cfg.engine_config()).run(
        &JobSpec::WordCount.job(REDUCES),
        &input,
        placer_by_name("paper", cfg.heartbeat.as_secs_f64()).unwrap(),
    );
    if expected.failed {
        eprintln!("tracker_failover: engine reference run failed");
        return ExitCode::FAILURE;
    }

    // The kill ladder: tracker-only kills in the first map wave and at
    // the wave boundary, then compound tracker+worker kills mid and late
    // reduce (the worker loss forces the recovered tracker to expire the
    // never-reattaching peer and place fresh re-executions, so the later
    // points still produce a failover-latency sample). `--smoke` keeps
    // the two most telling points.
    let full: &[(&str, u64, bool)] = &[
        ("mid-map", 200, false),
        ("wave-boundary", 350, false),
        ("mid-reduce+worker-loss", 450, true),
        ("late-reduce+worker-loss", 600, true),
    ];
    let points: &[(&str, u64, bool)] = if smoke {
        &[("mid-map", 200, false), ("mid-reduce+worker-loss", 450, true)]
    } else {
        full
    };

    let scratch = std::env::temp_dir().join(format!("pnats-failover-{}", std::process::id()));
    let mut latencies = Vec::new();
    for (label, kill_ms, kill_worker) in points {
        let dir = scratch.join(label);
        let t = trial(seed, label, *kill_ms, *kill_worker);
        match run_kill_trial(&bin, &dir, &t, &input, &expected.output) {
            Ok(Some(ms)) => {
                println!("tracker_failover trial={label} kill_at_ms={kill_ms} failover_ms={ms:.1}");
                latencies.push(ms);
            }
            Ok(None) => {
                // Every live assignment was inherited at re-attach; the
                // recovery gates all passed but there is no fresh-assignment
                // instant to measure.
                println!("tracker_failover trial={label} kill_at_ms={kill_ms} failover_ms=n/a");
            }
            Err(e) => {
                eprintln!("tracker_failover: trial {label}: {e}");
                let _ = std::fs::remove_dir_all(&scratch);
                return ExitCode::FAILURE;
            }
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);

    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if latencies.is_empty() {
        eprintln!(
            "tracker_failover: no trial produced a fresh post-recovery assignment; \
             nothing to merge into BENCH_cluster.json"
        );
        return ExitCode::FAILURE;
    }
    let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
    let p99 = latencies[(latencies.len() * 99 / 100).min(latencies.len() - 1)];
    if let Err(e) = merge_bench_json(mean, p99, latencies.len()) {
        eprintln!("tracker_failover: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "tracker_failover ok seed={seed} smoke={smoke} trials={} failover_ms_mean={mean:.1} \
         failover_ms_p99={p99:.1} total_s={:.2}",
        latencies.len(),
        wall.elapsed().as_secs_f64()
    );
    println!("Failover latency merged into BENCH_cluster.json");
    ExitCode::SUCCESS
}
