//! Figure 5: CDF of the per-job processing-time reduction achieved by the
//! probabilistic scheduler, `(baseline − probabilistic) / baseline`.
//!
//! Paper's shape (replication 2): ~28 % of jobs gain > 47 % vs Coupling and
//! ~24 % gain > 43 % vs Fair; average reductions 17 % (Coupling) and 46 %
//! (Fair). We pair the same 30 jobs across schedulers.

use pnats_bench::harness::{
    batch_runs, cloud_config, jct_by_name, run_matrix, SchedulerKind, PAPER_SCHEDULERS,
};
use pnats_metrics::stats::paired_reductions;
use pnats_metrics::{render_series, Cdf};
use pnats_sim::SimReport;

fn pooled_jcts(reports: &[SimReport]) -> Vec<(String, f64)> {
    let mut v: Vec<(String, f64)> = reports.iter().flat_map(jct_by_name).collect();
    v.sort_by(|a, b| a.0.cmp(&b.0));
    v
}

fn main() {
    pnats_bench::usage_on_help("[seed]");
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    // One 9-cell matrix: [probabilistic, coupling, fair] × 3 batches.
    let runs = PAPER_SCHEDULERS
        .iter()
        .flat_map(|kind| batch_runs(*kind, || cloud_config(seed)))
        .collect();
    let all_reports = run_matrix(runs);

    let ours = pooled_jcts(&all_reports[0..3]);
    let mut series = Vec::new();
    let mut means = Vec::new();
    for (bi, base) in [SchedulerKind::Coupling, SchedulerKind::Fair].into_iter().enumerate() {
        let theirs = pooled_jcts(&all_reports[3 * (bi + 1)..3 * (bi + 2)]);
        assert_eq!(ours.len(), theirs.len());
        for (a, b) in ours.iter().zip(&theirs) {
            assert_eq!(a.0, b.0, "job pairing mismatch");
        }
        let reductions = paired_reductions(
            &theirs.iter().map(|(_, j)| *j).collect::<Vec<_>>(),
            &ours.iter().map(|(_, j)| *j).collect::<Vec<_>>(),
        );
        let mean = reductions.iter().sum::<f64>() / reductions.len() as f64;
        means.push((base.label(), mean));
        series.push((
            match base {
                SchedulerKind::Coupling => "vs_coupling",
                _ => "vs_fair",
            },
            Cdf::new(reductions).steps(),
        ));
    }
    let series_ref: Vec<(&str, Vec<(f64, f64)>)> =
        series.iter().map(|(n, s)| (*n, s.clone())).collect();
    print!(
        "{}",
        render_series(
            "Figure 5 — CDF of per-job processing-time reduction (%)",
            "reduction_pct",
            &series_ref,
        )
    );
    println!();
    for (label, mean) in means {
        println!(
            "mean reduction vs {label}: {mean:.1}%   (paper: {} %)",
            if label == "coupling" { 17 } else { 46 }
        );
    }
}
