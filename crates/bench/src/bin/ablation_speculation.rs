//! Robustness extension: speculative execution under injected stragglers.
//!
//! The paper's related work leans on Mantri ("reining in the outliers");
//! our simulator injects slow nodes and optionally launches Hadoop-style
//! backup copies. This sweep shows (a) stragglers hurt every scheduler and
//! (b) speculation claws the tail back, orthogonally to placement policy.

use pnats_bench::harness::{hdfs_config, mean_jct, run_matrix, Run, SchedulerKind};
use pnats_metrics::render_table;
use pnats_sim::{JobInput, TaskKind};
use pnats_workloads::{table2_batch, AppKind};

fn main() {
    pnats_bench::usage_on_help("[seed]");
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    let inputs = JobInput::from_batch(&table2_batch(AppKind::Grep));
    // (label, slow nodes as (index, speed factor), speculation lag)
    type Condition = (&'static str, Vec<(usize, f64)>, f64);
    let conditions: [Condition; 3] = [
        ("healthy", vec![], 0.0),
        ("3 stragglers", vec![(5usize, 0.15), (23, 0.2), (47, 0.1)], 0.0),
        ("3 stragglers + speculation", vec![(5, 0.15), (23, 0.2), (47, 0.1)], 0.25),
    ];
    let runs = conditions
        .iter()
        .map(|(_, slow, spec)| {
            let mut cfg = hdfs_config(seed);
            cfg.slow_nodes = slow.clone();
            cfg.speculation_lag = *spec;
            Run::new(SchedulerKind::Probabilistic, cfg, inputs.clone())
        })
        .collect();
    let reports = run_matrix(runs);

    let mut rows = Vec::new();
    for ((label, _, _), r) in conditions.iter().zip(&reports) {
        let maps = r.trace.task_time_cdf(TaskKind::Map);
        rows.push(vec![
            label.to_string(),
            format!("{:.0}", mean_jct(r)),
            format!("{:.0}", r.trace.makespan()),
            format!("{:.1}", maps.quantile(0.99)),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Speculation ablation — Grep batch, probabilistic scheduler",
            &["condition", "mean JCT (s)", "makespan (s)", "map p99 (s)"],
            &rows,
        )
    );
}
