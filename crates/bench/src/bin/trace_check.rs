//! CI gate for the decision-tracing pipeline: run a small traced matrix
//! and verify, end to end, that
//!
//! 1. every emitted trace line is well-formed JSON,
//! 2. the counter identity holds (`offers = assigns + Σ skips`, and one
//!    record per offer),
//! 3. the fixed-seed trace is byte-identical across reruns and across
//!    serial vs. parallel matrix execution.
//!
//! Exits non-zero (with a FATAL line) on any violation.
//!
//! Usage: `cargo run --release -p pnats-bench --bin trace_check [seed]`

use pnats_bench::harness::{cloud_config, parallel_map, Run, SchedulerKind};
use pnats_obs::json::validate_json;
use pnats_obs::SchedCounters;
use pnats_sim::config::background_traffic;
use pnats_sim::{JobInput, SimReport};
use pnats_workloads::{scaled_batch, AppKind};

fn fatal(msg: String) -> ! {
    eprintln!("FATAL: {msg}");
    std::process::exit(1);
}

/// Concatenated trace + merged per-scheduler counters of a traced matrix.
fn trace_and_counters(reports: &[SimReport]) -> (String, Vec<(String, SchedCounters)>) {
    let mut text = String::new();
    let mut agg: Vec<(String, SchedCounters)> = Vec::new();
    for r in reports {
        match r.trace_jsonl.as_ref() {
            Some(t) => text.push_str(t),
            None => fatal(format!("{}: traced run produced no trace", r.scheduler)),
        }
        match agg.iter_mut().find(|(n, _)| *n == r.scheduler) {
            Some((_, c)) => c.merge(&r.counters),
            None => agg.push((r.scheduler.clone(), r.counters.clone())),
        }
    }
    (text, agg)
}

fn main() {
    pnats_bench::usage_on_help("[seed]");
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    // A small but non-trivial matrix: three schedulers, two apps, on a
    // shrunken cloud config with background traffic so skips actually
    // occur (delay scheduling, probability gates, co-location refusals).
    let mk_runs = || -> Vec<Run> {
        let mut runs = Vec::new();
        for kind in [
            SchedulerKind::Probabilistic,
            SchedulerKind::Fair,
            SchedulerKind::Coupling,
        ] {
            for (i, app) in [AppKind::Grep, AppKind::Terasort].iter().enumerate() {
                let mut cfg = cloud_config(seed + i as u64);
                cfg.n_nodes = 10;
                cfg.background = background_traffic(2, 1_000.0, cfg.n_nodes, seed);
                runs.push(
                    Run::new(kind, cfg, JobInput::from_batch(&scaled_batch(*app, 2, 24)))
                        .traced(),
                );
            }
        }
        runs
    };

    let serial = parallel_map(mk_runs(), 1, Run::execute);
    let rerun = parallel_map(mk_runs(), 1, Run::execute);
    let wide = parallel_map(mk_runs(), 4, Run::execute);

    let (trace, counters) = trace_and_counters(&serial);
    let (trace_rerun, _) = trace_and_counters(&rerun);
    let (trace_wide, _) = trace_and_counters(&wide);

    // (3) Determinism: byte-identical across reruns and thread counts.
    if trace != trace_rerun {
        fatal("trace differs between two serial executions of the same seed".into());
    }
    if trace != trace_wide {
        fatal("trace differs between serial and parallel matrix execution".into());
    }

    // (1) Every line parses as JSON.
    let mut lines = 0u64;
    for line in trace.lines() {
        lines += 1;
        if let Err(e) = validate_json(line) {
            fatal(format!("invalid JSON trace line: {e}\n{line}"));
        }
    }
    if lines == 0 {
        fatal("traced matrix emitted no records".into());
    }

    // (2) Counter identity, per scheduler and in total.
    let mut offers_total = 0u64;
    for (name, c) in &counters {
        if !c.consistent() {
            fatal(format!("{name}: offers != assigns + skips: {c:?}"));
        }
        if c.offers == 0 {
            fatal(format!("{name}: no slot offers recorded"));
        }
        offers_total += c.offers;
    }
    if lines != offers_total {
        fatal(format!(
            "trace has {lines} records but counters saw {offers_total} offers"
        ));
    }

    println!(
        "TRACE_CHECK ok: {lines} records, {} schedulers, deterministic across reruns and thread counts",
        counters.len()
    );
    for (name, c) in &counters {
        println!("  {name}: {}", c.to_kv());
    }
}
