//! Ablation: the paper's intermediate-size estimator (§II-B2).
//!
//! Same scheduler, two estimators: the paper's progress-extrapolated
//! `Î = A · B / d_read` vs Coupling's raw current size `A`. The paper
//! credits its estimator as the third reason for its gains; the effect
//! concentrates on shuffle-heavy batches whose reduces are placed while
//! many maps are still running.

use pnats_bench::harness::{cloud_config, mean_jct, run_matrix, PlacerSpec, Run};
use pnats_core::estimate::IntermediateEstimator;
use pnats_core::prob::ProbabilityModel;
use pnats_metrics::render_table;
use pnats_sim::JobInput;
use pnats_workloads::{table2_batch, AppKind};

fn main() {
    pnats_bench::usage_on_help("[seed]");
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    // 3 batches × 2 estimators, app-major to match the table rows.
    let mut runs = Vec::new();
    for app in AppKind::ALL {
        let inputs = JobInput::from_batch(&table2_batch(app));
        for est in [
            IntermediateEstimator::ProgressExtrapolated,
            IntermediateEstimator::CurrentSize,
        ] {
            runs.push(Run::with_spec(
                PlacerSpec::Probabilistic {
                    p_min: 0.4,
                    model: ProbabilityModel::Exponential,
                    estimator: est,
                },
                cloud_config(seed),
                inputs.clone(),
            ));
        }
    }
    let reports = run_matrix(runs);

    let mut rows = Vec::new();
    for (app, pair) in AppKind::ALL.into_iter().zip(reports.chunks(2)) {
        let mut cells = vec![app.to_string()];
        cells.extend(pair.iter().map(|r| format!("{:.0}", mean_jct(r))));
        rows.push(cells);
    }
    print!(
        "{}",
        render_table(
            "Estimator ablation — mean JCT (s) per batch",
            &["batch", "progress-extrapolated (paper)", "current-size (coupling's)"],
            &rows,
        )
    );
}
