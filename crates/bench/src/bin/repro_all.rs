//! Run every table/figure reproduction in sequence, printing one
//! EXPERIMENTS.md-ready report. Equivalent to running each `--bin`
//! individually; expect several minutes of wall-clock in release mode.
//!
//! Usage: `cargo run --release -p pnats-bench --bin repro_all [seed]`

use std::process::Command;

fn main() {
    let seed = std::env::args().nth(1).unwrap_or_else(|| "42".to_string());
    let bins = [
        "table2",
        "fig3_data_size",
        "fig4_jct_cdf",
        "fig5_reduction",
        "fig6_task_times",
        "table3_locality",
        "fig7_locality_vs_size",
        "pmin_sweep",
        "ablation_estimation",
        "ablation_netcond",
        "ablation_prob_model",
        "ablation_replication",
        "ablation_speculation",
        "extended_comparison",
        "continuous_arrivals",
    ];
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin dir");
    for bin in bins {
        println!("\n############ {bin} ############");
        let status = Command::new(dir.join(bin))
            .arg(&seed)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            eprintln!("{bin} exited with {status}");
            std::process::exit(1);
        }
    }
    println!("\nAll experiments completed.");
}
