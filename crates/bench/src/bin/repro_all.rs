//! Run every table/figure reproduction in sequence, printing one
//! EXPERIMENTS.md-ready report, and write `BENCH_harness.json` with
//! machine-readable wall-clock accounting per experiment.
//!
//! Experiments execute their run matrices across all cores (see
//! `harness::run_matrix`; `PNATS_THREADS` pins the worker count). Before
//! the sweep, one calibration experiment is executed twice — serially
//! (`PNATS_THREADS=1`) and at full width — to record the measured speedup
//! and to verify the parallel harness is byte-identical to the serial one
//! on stdout.
//!
//! Usage: `cargo run --release -p pnats-bench --bin repro_all [seed]`

use pnats_bench::harness::harness_threads;
use pnats_obs::SchedCounters;
use pnats_tenancy::TenantCounters;
use std::io::Write as _;
use std::process::Command;
use std::time::Instant;

/// The experiment whose serial/parallel pair calibrates the speedup: a
/// 9-run matrix with fully deterministic stdout.
const CALIBRATION_BIN: &str = "fig4_jct_cdf";

struct ExperimentRecord {
    name: String,
    wall_s: f64,
    matrix_runs: usize,
}

/// Stdout/stderr of one child plus repro_all's own wall measurement.
struct ChildRun {
    stdout: Vec<u8>,
    stderr: String,
    wall_s: f64,
}

fn run_child(dir: &std::path::Path, bin: &str, seed: &str, threads: Option<usize>) -> ChildRun {
    let mut cmd = Command::new(dir.join(bin));
    cmd.arg(seed);
    if let Some(t) = threads {
        cmd.env("PNATS_THREADS", t.to_string());
    }
    let wall = Instant::now();
    let out = cmd
        .output()
        .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
    let wall_s = wall.elapsed().as_secs_f64();
    if !out.status.success() {
        std::io::stdout().write_all(&out.stdout).ok();
        eprintln!("{}", String::from_utf8_lossy(&out.stderr));
        eprintln!("{bin} exited with {}", out.status);
        std::process::exit(1);
    }
    ChildRun {
        stdout: out.stdout,
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
        wall_s,
    }
}

/// Fold a child's `COUNTERS scheduler=<name> <kv…>` stderr lines into the
/// cross-experiment per-scheduler aggregate (first-appearance order).
fn merge_counters(stderr: &str, agg: &mut Vec<(String, SchedCounters)>) {
    for line in stderr.lines().filter(|l| l.starts_with("COUNTERS ")) {
        let mut tokens = line.split_whitespace().skip(1);
        let Some(name) = tokens.next().and_then(|t| t.strip_prefix("scheduler=")) else {
            continue;
        };
        let c = SchedCounters::from_kv(tokens);
        match agg.iter_mut().find(|(n, _)| n == name) {
            Some((_, total)) => total.merge(&c),
            None => agg.push((name.to_string(), c)),
        }
    }
}

/// Fold a child's `TENANTS tenant=<name> <kv…>` stderr lines into the
/// cross-experiment per-tenant aggregate (first-appearance order). Only
/// service-mode experiments emit them.
fn merge_tenant_counters(stderr: &str, agg: &mut Vec<(String, TenantCounters)>) {
    for line in stderr.lines().filter(|l| l.starts_with("TENANTS ")) {
        let mut tokens = line.split_whitespace().skip(1);
        let Some(name) = tokens.next().and_then(|t| t.strip_prefix("tenant=")) else {
            continue;
        };
        let c = TenantCounters::from_kv(tokens);
        match agg.iter_mut().find(|(n, _)| n == name) {
            Some((_, total)) => total.merge(&c),
            None => agg.push((name.to_string(), c)),
        }
    }
}

/// Lines of an existing `BENCH_harness.json` written by section-patching
/// binaries (`scale_sweep`, `tenant_service`) rather than by `repro_all`
/// itself. Preserved verbatim across the rewrite so re-running `repro_all`
/// does not clobber their results.
fn preserved_sections() -> Vec<String> {
    let Ok(existing) = std::fs::read_to_string("BENCH_harness.json") else {
        return Vec::new();
    };
    existing
        .lines()
        .filter(|l| {
            let t = l.trim_start();
            t.starts_with("\"scale_sweep\":") || t.starts_with("\"tenant_service\":")
        })
        .map(|l| l.to_string())
        .collect()
}

/// Total matrix runs reported by a child's `HARNESS runs=…` stderr lines.
fn total_matrix_runs(stderr: &str) -> usize {
    stderr
        .lines()
        .filter(|l| l.starts_with("HARNESS "))
        .filter_map(|l| {
            l.split_whitespace()
                .find_map(|tok| tok.strip_prefix("runs="))
                .and_then(|v| v.parse::<usize>().ok())
        })
        .sum()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    pnats_bench::usage_on_help("[seed]");
    let seed = std::env::args().nth(1).unwrap_or_else(|| "42".to_string());
    let bins = [
        "table2",
        "fig3_data_size",
        "fig4_jct_cdf",
        "fig5_reduction",
        "fig6_task_times",
        "table3_locality",
        "fig7_locality_vs_size",
        "pmin_sweep",
        "ablation_estimation",
        "ablation_netcond",
        "ablation_prob_model",
        "ablation_replication",
        "ablation_speculation",
        "fault_sweep",
        "extended_comparison",
        "continuous_arrivals",
    ];
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin dir").to_path_buf();
    let threads = harness_threads();

    // Calibration: the same experiment serially and at full width. The
    // simulations seed their own RNGs, so stdout must match byte for byte.
    println!("######## calibration: {CALIBRATION_BIN} serial vs {threads} threads ########");
    let serial = run_child(&dir, CALIBRATION_BIN, &seed, Some(1));
    let parallel = run_child(&dir, CALIBRATION_BIN, &seed, None);
    let identical = serial.stdout == parallel.stdout;
    let speedup = serial.wall_s / parallel.wall_s.max(1e-9);
    println!(
        "serial {:.2}s  parallel {:.2}s  speedup {speedup:.2}x  stdout_identical={identical}",
        serial.wall_s, parallel.wall_s
    );
    if !identical {
        eprintln!("FATAL: parallel stdout differs from serial stdout — determinism broken");
        std::process::exit(1);
    }

    let total = Instant::now();
    let mut records = Vec::new();
    let mut counters: Vec<(String, SchedCounters)> = Vec::new();
    let mut tenant_counters: Vec<(String, TenantCounters)> = Vec::new();
    for bin in bins {
        println!("\n############ {bin} ############");
        let child = run_child(&dir, bin, &seed, None);
        std::io::stdout().write_all(&child.stdout).expect("stdout");
        merge_counters(&child.stderr, &mut counters);
        merge_tenant_counters(&child.stderr, &mut tenant_counters);
        records.push(ExperimentRecord {
            name: bin.to_string(),
            wall_s: child.wall_s,
            matrix_runs: total_matrix_runs(&child.stderr),
        });
    }
    let total_wall_s = total.elapsed().as_secs_f64();

    // Decision accounting must balance: every slot offer became exactly
    // one assign or one reason-tagged skip.
    for (name, c) in &counters {
        if !c.consistent() {
            eprintln!("FATAL: {name} counters violate offers = assigns + skips: {c:?}");
            std::process::exit(1);
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"seed\": \"{}\",\n", json_escape(&seed)));
    json.push_str("  \"calibration\": {\n");
    json.push_str(&format!("    \"experiment\": \"{CALIBRATION_BIN}\",\n"));
    json.push_str(&format!("    \"serial_wall_s\": {:.3},\n", serial.wall_s));
    json.push_str(&format!("    \"parallel_wall_s\": {:.3},\n", parallel.wall_s));
    json.push_str(&format!("    \"speedup\": {speedup:.3},\n"));
    json.push_str(&format!("    \"stdout_identical\": {identical}\n"));
    json.push_str("  },\n");
    json.push_str("  \"experiments\": [\n");
    for (i, rec) in records.iter().enumerate() {
        // Always a number: 0-matrix-run bins (pure data tables like table2)
        // report 0.000 rather than null, so downstream diffing can parse the
        // column uniformly.
        let runs_per_s = format!("{:.3}", rec.matrix_runs as f64 / rec.wall_s.max(1e-9));
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_s\": {:.3}, \"matrix_runs\": {}, \"runs_per_s\": {}}}{}\n",
            json_escape(&rec.name),
            rec.wall_s,
            rec.matrix_runs,
            runs_per_s,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"scheduler_counters\": {\n");
    for (i, (name, c)) in counters.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {}{}\n",
            json_escape(name),
            c.to_json_object("    "),
            if i + 1 < counters.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    if !tenant_counters.is_empty() {
        json.push_str("  \"tenant_counters\": {\n");
        for (i, (name, c)) in tenant_counters.iter().enumerate() {
            json.push_str(&format!(
                "    \"{}\": {}{}\n",
                json_escape(name),
                c.to_json_object(),
                if i + 1 < tenant_counters.len() { "," } else { "" }
            ));
        }
        json.push_str("  },\n");
    }
    // Keep sections owned by the patching binaries (read before the
    // rewrite below replaces the file).
    for line in preserved_sections() {
        let line = line.trim_end().trim_end_matches(',');
        json.push_str(&format!("{line},\n"));
    }
    json.push_str(&format!("  \"total_wall_s\": {total_wall_s:.3}\n"));
    json.push_str("}\n");
    std::fs::write("BENCH_harness.json", &json).expect("write BENCH_harness.json");

    println!("\nAll experiments completed in {total_wall_s:.1}s ({threads} threads).");
    println!("Wall-clock accounting written to BENCH_harness.json");
}
