//! Figure 4: CDF of job completion time under the three schedulers
//! (replication factor 2).
//!
//! The paper's shape: at any deadline `t`, the probabilistic scheduler
//! completes the largest fraction of jobs; on average it reduces job
//! processing time by ~17 % vs Coupling and ~46 % vs Fair. We run the three
//! Table II batches separately (as §III does) under the cloud-layout
//! configuration and pool the 30 jobs per scheduler.

use pnats_bench::harness::{batch_runs, cloud_config, mean_jct, run_matrix, PAPER_SCHEDULERS};
use pnats_metrics::{render_series, render_table, Cdf};

fn main() {
    pnats_bench::usage_on_help("[seed]");
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    // One 9-cell matrix (3 schedulers × 3 batches), executed across cores.
    let runs = PAPER_SCHEDULERS
        .iter()
        .flat_map(|kind| batch_runs(*kind, || cloud_config(seed)))
        .collect();
    let all_reports = run_matrix(runs);

    let mut series = Vec::new();
    let mut summary_rows = Vec::new();
    for (reports, kind) in all_reports.chunks(3).zip(PAPER_SCHEDULERS) {
        let jcts: Vec<f64> = reports
            .iter()
            .flat_map(|r| r.trace.jobs.iter().map(|j| j.jct()))
            .collect();
        let mean = jcts.iter().sum::<f64>() / jcts.len() as f64;
        let batch_means: Vec<String> =
            reports.iter().map(|r| format!("{:.0}", mean_jct(r))).collect();
        summary_rows.push(vec![
            kind.label().to_string(),
            format!("{:.0}", mean),
            batch_means.join("/"),
            format!("{}", jcts.len()),
        ]);
        series.push((kind.label(), Cdf::new(jcts).steps()));
    }
    let series_ref: Vec<(&str, Vec<(f64, f64)>)> = series
        .iter()
        .map(|(n, s)| (*n, s.clone()))
        .collect();
    print!(
        "{}",
        render_series("Figure 4 — CDF of job completion time (s)", "jct_s", &series_ref)
    );
    println!();
    print!(
        "{}",
        render_table(
            "Mean JCT per scheduler",
            &["scheduler", "mean_jct_s", "per-batch (wc/ts/grep)", "jobs"],
            &summary_rows,
        )
    );
}
