//! Figure 7: percentage of map tasks with local data, per input size.
//!
//! The paper buckets jobs by input size (10–100 GB) and shows the
//! probabilistic scheduler holding the best map locality at every size.
//! We run the three batches under the stock-HDFS layout and bucket the
//! pooled map tasks by their job's input size.

use pnats_bench::harness::{batch_runs, hdfs_config, run_matrix, PAPER_SCHEDULERS};
use pnats_metrics::{render_table, LocalityCounter};
use pnats_sim::TaskKind;
use pnats_workloads::TABLE2;

fn main() {
    pnats_bench::usage_on_help("[seed]");
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    // size bucket (GB) -> per-scheduler counter
    let sizes: Vec<u32> = (1..=10).map(|x| x * 10).collect();
    let mut table: Vec<Vec<String>> = Vec::new();
    let mut per_sched: Vec<Vec<LocalityCounter>> = Vec::new();

    let runs = PAPER_SCHEDULERS
        .iter()
        .flat_map(|kind| batch_runs(*kind, || hdfs_config(seed)))
        .collect();
    let all_reports = run_matrix(runs);

    for reports in all_reports.chunks(3) {
        let mut buckets = vec![LocalityCounter::default(); sizes.len()];
        for (bi, report) in reports.iter().enumerate() {
            // Batch bi contains the jobs of one application in Table II
            // order: job index within the run == index into that batch.
            let batch_specs: Vec<_> = TABLE2
                .iter()
                .filter(|j| {
                    matches!(
                        (bi, j.app),
                        (0, pnats_workloads::AppKind::Wordcount)
                            | (1, pnats_workloads::AppKind::Terasort)
                            | (2, pnats_workloads::AppKind::Grep)
                    )
                })
                .collect();
            for t in report.trace.tasks_of(TaskKind::Map) {
                let size = batch_specs[t.job].input_gb;
                let bucket = sizes.iter().position(|s| *s == size).expect("known size");
                buckets[bucket].record(t.locality);
            }
        }
        per_sched.push(buckets);
    }
    for (si, size) in sizes.iter().enumerate() {
        let mut row = vec![format!("{size}")];
        for buckets in &per_sched {
            row.push(format!("{:.1}", buckets[si].pct_node_local()));
        }
        table.push(row);
    }
    print!(
        "{}",
        render_table(
            "Figure 7 — % of map tasks with local data, by input size (GB)",
            &["input_gb", "probabilistic", "coupling", "fair"],
            &table,
        )
    );
}
