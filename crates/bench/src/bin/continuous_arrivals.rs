//! Sensitivity: Poisson job arrivals instead of the paper's all-at-once
//! batches — the shared-cluster steady state the conclusion targets.
//! Sweeps offered load (mean inter-arrival gap) for the three schedulers.
//!
//! Runs through the tenancy layer as its single-tenant special case: the
//! passthrough config exercises the service-mode arrival path while
//! producing byte-identical traces to a tenancy-free run (pinned by
//! `tests/tenancy_parity.rs`).

use pnats_bench::harness::{cloud_config, mean_jct, run_matrix, Run, PAPER_SCHEDULERS};
use pnats_metrics::render_table;
use pnats_sim::JobInput;
use pnats_tenancy::TenancyConfig;
use pnats_workloads::poisson_mixed_batch;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    pnats_bench::usage_on_help("[seed]");
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    // Arrival sequences are drawn up front (one seeded stream per load
    // level, exactly as the serial loop did), so the matrix cells stay
    // independent of execution order.
    let mut cells = Vec::new();
    let mut runs = Vec::new();
    for gap_s in [120.0, 60.0, 30.0] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let batch = poisson_mixed_batch(15, gap_s, &mut rng);
        let inputs = JobInput::from_batch(&batch);
        for kind in PAPER_SCHEDULERS {
            cells.push((gap_s, kind));
            let mut cfg = cloud_config(seed);
            cfg.tenancy = Some(TenancyConfig::single_tenant(inputs.len()));
            runs.push(Run::new(kind, cfg, inputs.clone()));
        }
    }
    let reports = run_matrix(runs);

    let mut rows = Vec::new();
    for ((gap_s, kind), r) in cells.iter().zip(&reports) {
        rows.push(vec![
            format!("{gap_s:.0}"),
            kind.label().to_string(),
            format!("{}/{}", r.jobs_completed, r.jobs_submitted),
            format!("{:.0}", mean_jct(r)),
            format!("{:.0}", r.trace.makespan()),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Continuous Poisson arrivals — 15 mixed Table II jobs",
            &["mean gap (s)", "scheduler", "done", "mean JCT (s)", "makespan (s)"],
            &rows,
        )
    );
}
