//! Ablation: §II-B3's network-condition cost (inverse measured rate) vs
//! plain hop counts, across background-traffic intensities.
//!
//! The paper's §V names "different network conditions (e.g., bandwidth
//! utilization)" as the evaluation this feature deserves. We sweep the
//! number of background-traffic lanes and compare hop-based scheduling
//! against the congestion-scaled matrix.

use pnats_bench::harness::{cloud_config, mean_jct, run_matrix, PlacerSpec, Run};
use pnats_core::estimate::IntermediateEstimator;
use pnats_core::prob::ProbabilityModel;
use pnats_metrics::render_table;
use pnats_sim::config::background_traffic;
use pnats_sim::JobInput;
use pnats_workloads::{table2_batch, AppKind};

fn main() {
    pnats_bench::usage_on_help("[seed]");
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    let inputs = JobInput::from_batch(&table2_batch(AppKind::Terasort));
    const LANES: [usize; 4] = [0, 4, 8, 16];
    let mut runs = Vec::new();
    for lanes in LANES {
        for netcond in [true, false] {
            let mut cfg = cloud_config(seed);
            cfg.network_condition = netcond;
            cfg.background = background_traffic(lanes, 8_000.0, cfg.n_nodes, 999 + seed);
            runs.push(Run::with_spec(
                PlacerSpec::Probabilistic {
                    p_min: 0.4,
                    model: ProbabilityModel::Exponential,
                    estimator: IntermediateEstimator::ProgressExtrapolated,
                },
                cfg,
                inputs.clone(),
            ));
        }
    }
    let reports = run_matrix(runs);

    let mut rows = Vec::new();
    for (lanes, pair) in LANES.into_iter().zip(reports.chunks(2)) {
        let mut cells = vec![lanes.to_string()];
        cells.extend(pair.iter().map(|r| format!("{:.0}", mean_jct(r))));
        rows.push(cells);
    }
    print!(
        "{}",
        render_table(
            "Network-condition ablation — Terasort batch mean JCT (s)",
            &["background lanes", "inverse-rate cost (§II-B3)", "hop cost"],
            &rows,
        )
    );
}
