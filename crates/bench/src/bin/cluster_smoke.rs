//! CI smoke for the cluster runtime: a real TCP JobTracker plus three
//! TaskTracker workers run WordCount, and the output must be
//! byte-identical to an in-process engine run of the same job on the same
//! seed. Also measures the framed heartbeat round-trip over loopback TCP —
//! the per-heartbeat overhead the cluster runtime pays versus the engine's
//! in-process calls — for the EXPERIMENTS.md parity methodology section.

use pnats_bench::usage_on_help;
use pnats_cluster::{check_cluster_report, placer_by_name, run_cluster, ClusterConfig, JobSpec};
use pnats_engine::MapReduceEngine;
use pnats_rpc::{Handler, Msg, RetryPolicy, RpcClient, RpcServer};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Deterministic prose-ish input, independent of the seed so the smoke
/// exercises the same job shape every run.
fn words_input(kib: usize) -> String {
    const WORDS: &[&str] = &[
        "smoke", "tracker", "worker", "heartbeat", "frame", "assign", "block", "replica",
        "shuffle", "partition",
    ];
    let mut s = String::new();
    let mut x = 0x853C_49E6_748F_EA9Bu64;
    while s.len() < kib * 1024 {
        for _ in 0..9 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s.push_str(WORDS[(x >> 33) as usize % WORDS.len()]);
            s.push(' ');
        }
        s.push('\n');
    }
    s
}

/// Mean and p99 round-trip (µs) of an idle-shaped heartbeat against a
/// loopback echo server: pure framing + TCP cost, no scheduling work.
fn heartbeat_rtt_us(rounds: usize) -> (f64, f64) {
    let echo: Handler = Arc::new(|m| m);
    let server =
        RpcServer::bind("127.0.0.1:0", echo, Duration::from_millis(200)).expect("bind echo");
    let mut client =
        RpcClient::connect(server.addr(), RetryPolicy::default(), Duration::from_secs(2))
            .expect("connect echo");
    let hb = Msg::Heartbeat {
        node: 0,
        epoch: 0,
        free_map_slots: 2,
        free_reduce_slots: 1,
        progress: vec![],
        map_done: vec![],
        map_failed: vec![],
        reduce_done: vec![],
        running_reduces: vec![],
        rpc_retries: 0,
        breaker_trips: 0,
        breaker_closes: 0,
        alt_fetches: 0,
        corrupt_frames: 0,
    };
    for _ in 0..16 {
        client.call(&hb).expect("warmup call");
    }
    let mut us: Vec<f64> = (0..rounds)
        .map(|_| {
            let t = Instant::now();
            client.call(&hb).expect("rtt call");
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = us.iter().sum::<f64>() / us.len() as f64;
    let p99 = us[(us.len() * 99 / 100).min(us.len() - 1)];
    (mean, p99)
}

fn main() -> ExitCode {
    usage_on_help("[seed]");
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(42);
    let wall = Instant::now();

    let cfg = ClusterConfig {
        n_nodes: 3,
        heartbeat: Duration::from_millis(4),
        seed,
        ..ClusterConfig::default()
    };
    let n_reduces = 3;
    let input = words_input(32);

    let engine = MapReduceEngine::new(cfg.engine_config());
    let t = Instant::now();
    let expected = engine.run(
        &JobSpec::WordCount.job(n_reduces),
        &input,
        placer_by_name("paper", cfg.heartbeat.as_secs_f64()).unwrap(),
    );
    let engine_ms = t.elapsed().as_secs_f64() * 1e3;
    if expected.failed {
        eprintln!("cluster_smoke: engine reference run failed");
        return ExitCode::FAILURE;
    }

    let t = Instant::now();
    let report = run_cluster(
        &cfg,
        &JobSpec::WordCount,
        n_reduces,
        &input,
        placer_by_name("paper", cfg.heartbeat.as_secs_f64()).unwrap(),
    );
    let cluster_ms = t.elapsed().as_secs_f64() * 1e3;

    if report.failed {
        eprintln!("cluster_smoke: cluster run failed");
        return ExitCode::FAILURE;
    }
    if let Err(e) = check_cluster_report(&report) {
        eprintln!("cluster_smoke: oracle violation: {e}");
        return ExitCode::FAILURE;
    }
    if report.output != expected.output {
        eprintln!("cluster_smoke: PARITY FAILURE — cluster output diverged from engine output");
        return ExitCode::FAILURE;
    }

    let (rtt_mean, rtt_p99) = heartbeat_rtt_us(256);
    println!(
        "cluster_smoke ok seed={seed} nodes={} n_maps={} n_reduces={} \
         engine_ms={engine_ms:.1} cluster_ms={cluster_ms:.1} \
         hb_rtt_mean_us={rtt_mean:.1} hb_rtt_p99_us={rtt_p99:.1} total_s={:.2}",
        cfg.n_nodes,
        report.n_maps,
        report.n_reduces,
        wall.elapsed().as_secs_f64()
    );

    // The machine-readable trail CI diffs across commits, mirroring
    // repro_all's BENCH_harness.json.
    let json = format!(
        "{{\n  \"bench\": \"cluster_smoke\",\n  \"seed\": {seed},\n  \"n_nodes\": {},\n  \
         \"n_maps\": {},\n  \"n_reduces\": {},\n  \"engine_ms\": {engine_ms:.1},\n  \
         \"cluster_ms\": {cluster_ms:.1},\n  \"hb_rtt_mean_us\": {rtt_mean:.1},\n  \
         \"hb_rtt_p99_us\": {rtt_p99:.1}\n}}\n",
        cfg.n_nodes, report.n_maps, report.n_reduces
    );
    if let Err(e) = pnats_obs::json::validate_json(&json) {
        eprintln!("cluster_smoke: malformed BENCH_cluster.json: {e}");
        return ExitCode::FAILURE;
    }
    std::fs::write("BENCH_cluster.json", &json).expect("write BENCH_cluster.json");
    println!("Heartbeat RTT written to BENCH_cluster.json");
    ExitCode::SUCCESS
}
