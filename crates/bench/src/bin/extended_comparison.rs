//! Beyond the paper's three-way comparison: all implemented schedulers —
//! including the Quincy-style global min-cost matcher, LARTS, FIFO,
//! deterministic min-cost and the random floor — on one scaled workload.
//!
//! Scaled (jobs ÷4) because the Quincy placer solves a min-cost flow per
//! slot offer, which is exactly the scheduling-overhead contrast the paper
//! draws against flow-based schedulers.

use pnats_bench::harness::{cloud_config, mean_jct, run_matrix_with, Run, ALL_SCHEDULERS};
use pnats_metrics::render_table;
use pnats_sim::{JobInput, TaskKind};
use pnats_workloads::{scaled_batch, AppKind};
use std::time::Instant;

fn main() {
    pnats_bench::usage_on_help("[seed]");
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    let inputs = JobInput::from_batch(&scaled_batch(AppKind::Wordcount, 10, 4));
    let runs = ALL_SCHEDULERS
        .iter()
        .map(|&kind| {
            let mut cfg = cloud_config(seed);
            cfg.map_candidate_window = 16; // bound Quincy's per-offer graph
            cfg.reduce_candidate_window = 8;
            Run::new(kind, cfg, inputs.clone())
        })
        .collect();
    // Per-run wall-clock is measured inside the worker; under parallel
    // execution it still reflects each solver's own compute (modulo cache
    // contention), which is the contrast this column exists to draw.
    let results = run_matrix_with(runs, |run| {
        let wall = Instant::now();
        let r = run.execute();
        (r, wall.elapsed().as_secs_f64())
    });

    let mut rows = Vec::new();
    for (kind, (r, wall_s)) in ALL_SCHEDULERS.into_iter().zip(&results) {
        let maps = r.trace.locality_of(TaskKind::Map);
        rows.push(vec![
            kind.label().to_string(),
            format!("{}/{}", r.jobs_completed, r.jobs_submitted),
            format!("{:.0}", mean_jct(r)),
            format!("{:.1}", maps.pct_node_local()),
            format!("{:.0}", r.trace.network_bytes / 1e9),
            format!("{:.1}", wall_s),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Extended comparison — scaled Wordcount batch (cloud layout)",
            &["scheduler", "done", "mean JCT (s)", "% local maps", "net GB", "solver wall (s)"],
            &rows,
        )
    );
}
