//! Figure 6: CDF of map-task and reduce-task running time under the three
//! schedulers (replication 2).
//!
//! Paper's shape: the probabilistic scheduler's tasks finish earliest on
//! both sides — all its map tasks complete within the time only 76 %
//! (Coupling) / 48 % (Fair) of baseline maps meet, and all its reduces
//! within the time only 65 % (Coupling) / 85 % (Fair) of baseline reduces
//! meet. Note Coupling's reduce tail is the worst of the three (its
//! postponed, current-size-guided launches), which our run reproduces.

use pnats_bench::harness::{batch_runs, cloud_config, run_matrix, PAPER_SCHEDULERS};
use pnats_metrics::{render_series, render_table, Cdf};
use pnats_sim::TaskKind;

fn main() {
    pnats_bench::usage_on_help("[seed]");
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    let runs = PAPER_SCHEDULERS
        .iter()
        .flat_map(|kind| batch_runs(*kind, || cloud_config(seed)))
        .collect();
    let all_reports = run_matrix(runs);

    let mut map_series = Vec::new();
    let mut red_series = Vec::new();
    let mut rows = Vec::new();
    for (reports, kind) in all_reports.chunks(3).zip(PAPER_SCHEDULERS) {
        let mut maps = Vec::new();
        let mut reds = Vec::new();
        for r in reports {
            maps.extend(r.trace.tasks_of(TaskKind::Map).map(|t| t.running_time()));
            reds.extend(r.trace.tasks_of(TaskKind::Reduce).map(|t| t.running_time()));
        }
        let mc = Cdf::new(maps);
        let rc = Cdf::new(reds);
        rows.push(vec![
            kind.label().to_string(),
            format!("{:.1}", mc.quantile(0.5)),
            format!("{:.1}", mc.quantile(0.95)),
            format!("{:.1}", mc.max().unwrap_or(0.0)),
            format!("{:.1}", rc.quantile(0.5)),
            format!("{:.1}", rc.quantile(0.95)),
            format!("{:.1}", rc.max().unwrap_or(0.0)),
        ]);
        // Downsample to keep the printed series readable.
        map_series.push((kind.label(), mc.series(40)));
        red_series.push((kind.label(), rc.series(40)));
    }
    let map_ref: Vec<(&str, Vec<(f64, f64)>)> =
        map_series.iter().map(|(n, s)| (*n, s.clone())).collect();
    let red_ref: Vec<(&str, Vec<(f64, f64)>)> =
        red_series.iter().map(|(n, s)| (*n, s.clone())).collect();
    print!(
        "{}",
        render_series("Figure 6(a) — CDF of map task running time (s)", "t_s", &map_ref)
    );
    println!();
    print!(
        "{}",
        render_series("Figure 6(b) — CDF of reduce task running time (s)", "t_s", &red_ref)
    );
    println!();
    print!(
        "{}",
        render_table(
            "Task running-time quantiles (s)",
            &["scheduler", "map_p50", "map_p95", "map_max", "red_p50", "red_p95", "red_max"],
            &rows,
        )
    );
}
