//! The paper's `P_min` selection experiment (§III): "we ran 10 Wordcount
//! jobs together several times with different `P_min` values and picked the
//! highest `P_min` value at the time when the all jobs finished
//! successfully. Accordingly, we set `P_min` to 0.4."
//!
//! We sweep `P_min`, reporting completion, mean JCT, locality and skipped
//! offers. High `P_min` starves the cluster (tasks whose best probability
//! stays below the threshold never launch) — the "finished successfully"
//! cliff the paper used to pick 0.4.

use pnats_bench::harness::{cloud_config, mean_jct, run_matrix, PlacerSpec, Run};
use pnats_core::estimate::IntermediateEstimator;
use pnats_core::prob::ProbabilityModel;
use pnats_metrics::render_table;
use pnats_sim::{JobInput, TaskKind};
use pnats_workloads::{table2_batch, AppKind};

fn main() {
    pnats_bench::usage_on_help("[seed]");
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    let inputs = JobInput::from_batch(&table2_batch(AppKind::Wordcount));
    const P_MINS: [f64; 5] = [0.0, 0.2, 0.4, 0.6, 0.8];
    let runs = P_MINS
        .iter()
        .map(|&p_min| {
            let mut cfg = cloud_config(seed);
            cfg.max_sim_time = 1_500.0;
            Run::with_spec(
                PlacerSpec::Probabilistic {
                    p_min,
                    model: ProbabilityModel::Exponential,
                    estimator: IntermediateEstimator::ProgressExtrapolated,
                },
                cfg,
                inputs.clone(),
            )
        })
        .collect();
    let reports = run_matrix(runs);

    let mut rows = Vec::new();
    for (p_min, r) in P_MINS.iter().zip(&reports) {
        let maps = r.trace.locality_of(TaskKind::Map);
        rows.push(vec![
            format!("{p_min:.1}"),
            format!("{}/{}", r.jobs_completed, r.jobs_submitted),
            if r.all_completed() { format!("{:.0}", mean_jct(r)) } else { "-".into() },
            format!("{:.1}", maps.pct_node_local()),
            format!("{}", r.trace.skipped_offers),
        ]);
    }
    print!(
        "{}",
        render_table(
            "P_min sweep — 10 Wordcount jobs (paper picks 0.4)",
            &["P_min", "jobs finished", "mean JCT (s)", "% local maps", "skipped offers"],
            &rows,
        )
    );
}
