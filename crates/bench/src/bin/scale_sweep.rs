//! Scale sweep: throughput of the incremental tick loop at 1k/10k nodes
//! and 100k/1M tasks, far beyond the paper's 60-node testbed.
//!
//! This is a *throughput benchmark*, not an experiment: it runs with the
//! nominal (contention-free) transfer engine (`fluid_network = false`) and
//! raw-hop costs (`network_condition = false`), the regime the incremental
//! cost index and flat task tables were built for. Decision semantics are
//! unchanged — the scheduler sees exactly the costs and candidate windows
//! it would see on a dense run (the differential gate in
//! `tests/scale_parity.rs` and the proptests in
//! `crates/sim/tests/cost_parity_props.rs` pin that), only the bookkeeping
//! is incremental.
//!
//! Grid: {1k, 10k} nodes × {100k, 1M} tasks × {probabilistic, fifo,
//! random}. Each cell reports simulated makespan, wall-clock and
//! tasks-placed-per-wall-second; results are folded into
//! `BENCH_harness.json` under a top-level `"scale_sweep"` key (the file is
//! created if `repro_all` has not run yet).
//!
//! Usage: `cargo run --release -p pnats-bench --bin scale_sweep [seed] [--smoke]`
//!
//! `--smoke` runs only the 1k-node / 100k-task column (all three
//! schedulers) and enforces a wall-clock budget — the CI guard against
//! accidentally regressing the tick loop back to quadratic scans.

use pnats_bench::harness::{patch_bench_section, run_matrix_with, Run, SchedulerKind};
use pnats_metrics::render_table;
use pnats_sim::config::TopologyKind;
use pnats_sim::{JobInput, SimConfig, SimReport};
use pnats_workloads::{AppKind, ShuffleModel};
use std::time::Instant;

/// Wall-clock budget for `--smoke` (1k nodes / 100k tasks × 3 schedulers).
/// Generous for slow CI runners; the pre-optimization loop blew through it
/// by more than an order of magnitude.
const SMOKE_BUDGET_S: f64 = 300.0;

/// Maps per job; with [`REDUCES_PER_JOB`] this makes each job exactly 1000
/// tasks, so the task count is job count × 1000.
const MAPS_PER_JOB: usize = 992;
const REDUCES_PER_JOB: usize = 8;
const BLOCK: u64 = 64 << 20;

/// The benchmark cluster: multi-rack, quiet network, nominal transfer
/// engine, small candidate windows (large windows measure candidate
/// cloning, not the tick loop).
fn scale_config(n_nodes: usize, seed: u64) -> SimConfig {
    let mut c = SimConfig::paper_testbed();
    c.n_nodes = n_nodes;
    c.topology = match n_nodes {
        1_000 => TopologyKind::MultiRack { racks: 25, per_rack: 40, uplink_bps: 10e9 },
        10_000 => TopologyKind::MultiRack { racks: 50, per_rack: 200, uplink_bps: 40e9 },
        n => {
            assert!(n % 40 == 0, "scale_sweep grid expects 1k/10k-style node counts");
            TopologyKind::MultiRack { racks: n / 40, per_rack: 40, uplink_bps: 10e9 }
        }
    };
    c.network_condition = false; // raw hops: the class-compressed metric
    c.fluid_network = false; // nominal engine: no global rate recomputation
    c.map_candidate_window = 8;
    c.reduce_candidate_window = 4;
    c.max_sim_time = 1_000_000.0;
    c.seed = seed;
    c
}

/// `n_tasks / 1000` identical jobs (992 maps + 8 reduces each, 64 MB
/// blocks), arrivals staggered over 300 simulated seconds.
fn scale_inputs(n_tasks: usize) -> Vec<JobInput> {
    assert_eq!(n_tasks % (MAPS_PER_JOB + REDUCES_PER_JOB), 0);
    let n_jobs = n_tasks / (MAPS_PER_JOB + REDUCES_PER_JOB);
    (0..n_jobs)
        .map(|ji| JobInput {
            name: format!("scale{ji:04}"),
            submit: 300.0 * ji as f64 / n_jobs as f64,
            block_sizes: vec![BLOCK; MAPS_PER_JOB],
            n_reduces: REDUCES_PER_JOB,
            shuffle: ShuffleModel::for_app(AppKind::Grep),
        })
        .collect()
}

struct Cell {
    n_nodes: usize,
    n_tasks: usize,
    scheduler: SchedulerKind,
    report: SimReport,
    wall_s: f64,
}

impl Cell {
    fn tasks_per_s(&self) -> f64 {
        self.n_tasks as f64 / self.wall_s.max(1e-9)
    }
}

fn main() {
    pnats_bench::usage_on_help("[seed] [--smoke]");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed: u64 = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(|s| s.parse().expect("seed must be an integer"))
        .unwrap_or(42);

    let schedulers = [SchedulerKind::Probabilistic, SchedulerKind::Fifo, SchedulerKind::Random];
    let grid: Vec<(usize, usize)> = if smoke {
        vec![(1_000, 100_000)]
    } else {
        vec![(1_000, 100_000), (1_000, 1_000_000), (10_000, 100_000), (10_000, 1_000_000)]
    };

    let mut runs = Vec::new();
    let mut shapes = Vec::new();
    for &(n_nodes, n_tasks) in &grid {
        for kind in schedulers {
            runs.push(Run::new(kind, scale_config(n_nodes, seed), scale_inputs(n_tasks)));
            shapes.push((n_nodes, n_tasks, kind));
        }
    }

    let total = Instant::now();
    let results = run_matrix_with(runs, |r| {
        let wall = Instant::now();
        let report = r.execute();
        (report, wall.elapsed().as_secs_f64())
    });
    let total_wall_s = total.elapsed().as_secs_f64();

    let cells: Vec<Cell> = shapes
        .into_iter()
        .zip(results)
        .map(|((n_nodes, n_tasks, scheduler), (report, wall_s))| Cell {
            n_nodes,
            n_tasks,
            scheduler,
            report,
            wall_s,
        })
        .collect();

    // Stdout carries only seed-determined columns (the workspace invariant:
    // byte-identical at any thread count); wall-clock accounting goes to
    // stderr like the harness's HARNESS lines.
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.n_nodes.to_string(),
                c.n_tasks.to_string(),
                c.scheduler.label().to_string(),
                format!("{}/{}", c.report.jobs_completed, c.report.jobs_submitted),
                format!("{:.1}", c.report.sim_end),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &format!("Scale sweep (seed {seed}) — incremental tick loop"),
            &["Nodes", "Tasks", "Scheduler", "Jobs done", "Sim end (s)"],
            &rows,
        )
    );
    for c in &cells {
        eprintln!(
            "SWEEP nodes={} tasks={} scheduler={} wall_s={:.3} tasks_per_s={:.0}",
            c.n_nodes,
            c.n_tasks,
            c.scheduler.label(),
            c.wall_s,
            c.tasks_per_s()
        );
    }

    for c in &cells {
        assert!(
            c.report.all_completed(),
            "{} @ {} nodes / {} tasks left jobs unfinished",
            c.scheduler.label(),
            c.n_nodes,
            c.n_tasks
        );
    }

    let mut cell_json: Vec<String> = Vec::new();
    for c in &cells {
        cell_json.push(format!(
            "{{\"nodes\": {}, \"tasks\": {}, \"scheduler\": \"{}\", \"sim_end_s\": {:.1}, \"wall_s\": {:.3}, \"tasks_per_s\": {:.0}}}",
            c.n_nodes,
            c.n_tasks,
            c.scheduler.label(),
            c.report.sim_end,
            c.wall_s,
            c.tasks_per_s()
        ));
    }
    let section = format!(
        "  \"scale_sweep\": {{\"seed\": \"{seed}\", \"smoke\": {smoke}, \"total_wall_s\": {total_wall_s:.3}, \"cells\": [{}]}},",
        cell_json.join(", ")
    );
    patch_bench_section("scale_sweep", &section);
    eprintln!("Scale sweep completed in {total_wall_s:.1}s; results folded into BENCH_harness.json");

    if smoke {
        assert!(
            total_wall_s <= SMOKE_BUDGET_S,
            "smoke sweep took {total_wall_s:.1}s, budget {SMOKE_BUDGET_S}s — tick loop regressed"
        );
        eprintln!("SMOKE OK ({total_wall_s:.1}s <= {SMOKE_BUDGET_S}s budget)");
    }
}
