//! Multi-tenant service mode: three weighted tenant streams submitting
//! Poisson job arrivals against one shared cluster, swept from light load
//! past the admission-control saturation point.
//!
//! Every run enables all three tenancy policies — DWRR weighted fair
//! sharing, admission control (per-tenant queue caps plus cluster
//! saturation backpressure), and min-share map preemption — under the
//! paper's probabilistic scheduler on the headline cloud configuration.
//! Reported per (arrival rate × tenant): jobs admitted/rejected/preempted,
//! completed-job JCT p50/p99, and a per-rate Jain fairness index over
//! weight-normalized map service (slot-seconds / weight: exactly 1.0 means
//! service split in weight proportion). Scheduling wall-clock (total and
//! per offer) is measured per run and reported on **stderr** and in the
//! JSON section only — stdout carries seed-determined columns exclusively,
//! so it stays byte-identical across thread counts.
//!
//! Results are folded into `BENCH_harness.json` under a top-level
//! `"tenant_service"` key (the file is created if `repro_all` has not run
//! yet). Every run must pass the trace oracle (`check_report`), which
//! includes the rejection-accounting, preemption-requeue and slot-capacity
//! laws.
//!
//! Usage: `cargo run --release -p pnats-bench --bin tenant_service [seed] [--smoke]`
//!
//! `--smoke` runs the lightest and heaviest rates on shrunken jobs and
//! enforces a wall-clock budget — the CI guard that service mode stays
//! cheap enough to gate on.

use pnats_bench::harness::{cloud_config, patch_bench_section, run_matrix, Run, SchedulerKind};
use pnats_metrics::{jain_index, percentile, render_table};
use pnats_sim::{check_report, JobInput, SimReport, TaskKind};
use pnats_tenancy::{TenancyConfig, TenantSet, TenantSpec};
use pnats_workloads::{multi_tenant_poisson, TenantStream};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

/// Wall-clock budget for `--smoke` (two rates on divisor-20 jobs).
const SMOKE_BUDGET_S: f64 = 120.0;

/// The three tenants: gold pays for 3× weight and a guaranteed quarter of
/// the map slots, silver for 2× weight, bronze rides along at weight 1
/// behind a short admission queue.
fn tenant_set() -> TenantSet {
    TenantSet::new(vec![
        TenantSpec::new("gold", 3.0).with_min_share(0.25),
        TenantSpec::new("silver", 2.0),
        TenantSpec::new("bronze", 1.0).with_queue_cap(4),
    ])
}

/// One sweep level: every tenant submits `n_jobs` Poisson arrivals with
/// the same mean gap (the offered load), sized down by `divisor`.
fn level_workload(
    mean_gap_s: f64,
    n_jobs: usize,
    divisor: u32,
    seed: u64,
) -> (Vec<JobInput>, Vec<u32>) {
    let streams = [TenantStream { n_jobs, mean_gap_s, divisor }; 3];
    // One seeded stream per load level, so levels are independent cells.
    let mut rng = SmallRng::seed_from_u64(seed ^ ((mean_gap_s as u64) << 8));
    let (batch, tags) = multi_tenant_poisson(&streams, &mut rng);
    (JobInput::from_batch(&batch), tags)
}

/// Per-tenant derived metrics of one finished run.
struct TenantRow {
    name: String,
    admitted: u64,
    rejected: u64,
    preempted: u64,
    done: usize,
    jct_p50: Option<f64>,
    jct_p99: Option<f64>,
}

/// Jain fairness index over weight-normalized map service (slot-seconds
/// per unit weight), counting only tenants that received any service.
fn service_jain(r: &SimReport, tags: &[u32], weights: &[f64]) -> Option<f64> {
    let mut service = vec![0.0f64; weights.len()];
    for t in r.trace.tasks_of(TaskKind::Map) {
        service[tags[t.job] as usize] += t.running_time();
    }
    let normalized: Vec<f64> = service
        .iter()
        .zip(weights)
        .map(|(s, w)| s / w)
        .filter(|x| *x > 0.0)
        .collect();
    jain_index(&normalized)
}

fn tenant_rows(r: &SimReport, tags: &[u32]) -> Vec<TenantRow> {
    r.tenants
        .iter()
        .enumerate()
        .map(|(t, ts)| {
            let mut jcts: Vec<f64> = r
                .trace
                .jobs
                .iter()
                .filter(|j| tags[j.job] as usize == t)
                .map(|j| j.jct())
                .collect();
            jcts.sort_by(f64::total_cmp);
            TenantRow {
                name: ts.name.clone(),
                admitted: ts.counters.admitted,
                rejected: ts.counters.rejected_queue + ts.counters.rejected_saturated,
                preempted: ts.counters.preempted,
                done: jcts.len(),
                jct_p50: percentile(&jcts, 0.50),
                jct_p99: percentile(&jcts, 0.99),
            }
        })
        .collect()
}

fn fmt_opt(x: Option<f64>) -> String {
    x.map_or_else(|| "-".to_string(), |v| format!("{v:.0}"))
}

fn json_opt(x: Option<f64>) -> String {
    x.map_or_else(|| "null".to_string(), |v| format!("{v:.3}"))
}

fn main() {
    pnats_bench::usage_on_help("[seed] [--smoke]");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed: u64 = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(|s| s.parse().expect("seed must be an integer"))
        .unwrap_or(42);

    // Offered-load sweep: mean Poisson gap per tenant stream, from a
    // comfortably subcritical trickle down to a gap well past the point
    // where backlog-per-slot exceeds the saturation threshold and
    // admission control starts shedding arrivals.
    let (gaps, n_jobs, divisor): (Vec<f64>, usize, u32) = if smoke {
        (vec![120.0, 10.0], 6, 20)
    } else {
        (vec![240.0, 120.0, 60.0, 15.0], 12, 4)
    };
    let tenants = tenant_set();
    let weights = tenants.weights();

    let mut runs = Vec::new();
    let mut cells = Vec::new();
    for &gap in &gaps {
        let (inputs, tags) = level_workload(gap, n_jobs, divisor, seed);
        let mut tc = TenancyConfig::new(tenants.clone(), tags.clone());
        tc.fairness = true;
        tc.admission = true;
        tc.preemption = true;
        tc.saturation_backlog = 2.0;
        tc.preempt_cooldown_s = 5.0;
        let mut cfg = cloud_config(seed);
        cfg.tenancy = Some(tc);
        runs.push(Run::new(SchedulerKind::Probabilistic, cfg, inputs.clone()));
        cells.push((gap, inputs, tags));
    }

    let total = Instant::now();
    let reports = run_matrix(runs);
    let total_wall_s = total.elapsed().as_secs_f64();

    for ((gap, inputs, _), r) in cells.iter().zip(&reports) {
        check_report(r, inputs)
            .unwrap_or_else(|e| panic!("oracle violation at gap {gap}: {e}"));
    }

    let mut rows = Vec::new();
    let mut level_json = Vec::new();
    for ((gap, _, tags), r) in cells.iter().zip(&reports) {
        let jain = service_jain(r, tags, &weights);
        let trows = tenant_rows(r, tags);
        let mut tenant_json = Vec::new();
        for (t, tr) in trows.iter().enumerate() {
            rows.push(vec![
                format!("{gap:.0}"),
                tr.name.clone(),
                format!("{:.0}", weights[t]),
                tr.admitted.to_string(),
                tr.rejected.to_string(),
                tr.preempted.to_string(),
                tr.done.to_string(),
                fmt_opt(tr.jct_p50),
                fmt_opt(tr.jct_p99),
                if t == 0 { fmt_opt(jain.map(|j| j * 100.0)) } else { String::new() },
            ]);
            tenant_json.push(format!(
                "{{\"name\": \"{}\", \"weight\": {}, \"admitted\": {}, \"rejected_queue\": {}, \"rejected_saturated\": {}, \"preempted\": {}, \"jobs_done\": {}, \"jct_p50_s\": {}, \"jct_p99_s\": {}}}",
                tr.name,
                weights[t],
                r.tenants[t].counters.admitted,
                r.tenants[t].counters.rejected_queue,
                r.tenants[t].counters.rejected_saturated,
                r.tenants[t].counters.preempted,
                tr.done,
                json_opt(tr.jct_p50),
                json_opt(tr.jct_p99),
            ));
        }
        // Wall-clock accounting stays off stdout (byte-identity invariant).
        let offers = r.counters.offers.max(1);
        let offer_us = r.sched_wall_s * 1e6 / offers as f64;
        eprintln!(
            "SERVICE gap_s={gap:.0} sched_wall_s={:.3} offers={} offer_latency_us={offer_us:.2}",
            r.sched_wall_s, r.counters.offers
        );
        level_json.push(format!(
            "{{\"mean_gap_s\": {gap:.0}, \"jain_index\": {}, \"jobs_rejected\": {}, \"sched_wall_s\": {:.3}, \"offer_latency_us\": {offer_us:.2}, \"tenants\": [{}]}}",
            json_opt(jain),
            r.jobs_rejected,
            r.sched_wall_s,
            tenant_json.join(", ")
        ));
    }

    print!(
        "{}",
        render_table(
            &format!("Tenant service mode (seed {seed}) — 3 tenants, Poisson arrivals"),
            &[
                "gap (s)", "tenant", "w", "admit", "reject", "preempt", "done", "p50 JCT",
                "p99 JCT", "Jain %",
            ],
            &rows,
        )
    );

    // The sweep must actually cross the saturation point: the heaviest
    // rate has to shed load through admission control.
    let heaviest = reports.last().expect("at least one level");
    assert!(
        heaviest.jobs_rejected > 0,
        "heaviest rate (gap {}s) rejected nothing — sweep no longer reaches saturation",
        gaps.last().unwrap()
    );

    let section = format!(
        "  \"tenant_service\": {{\"seed\": \"{seed}\", \"smoke\": {smoke}, \"total_wall_s\": {total_wall_s:.3}, \"levels\": [{}]}},",
        level_json.join(", ")
    );
    patch_bench_section("tenant_service", &section);
    eprintln!(
        "Tenant service sweep completed in {total_wall_s:.1}s; results folded into BENCH_harness.json"
    );

    if smoke {
        assert!(
            total_wall_s <= SMOKE_BUDGET_S,
            "smoke sweep took {total_wall_s:.1}s, budget {SMOKE_BUDGET_S}s — service mode regressed"
        );
        eprintln!("SMOKE OK ({total_wall_s:.1}s <= {SMOKE_BUDGET_S}s budget)");
    }
}
