//! Figure 3: CDF of input data size and shuffle data size over the 30
//! submitted jobs.
//!
//! Paper's shape: ~60 % of jobs exceed 50 GB of shuffle data, ~20 % exceed
//! 100 GB, and ~20 % (the Grep jobs) stay below 10 GB.

use pnats_metrics::{render_series, Cdf};
use pnats_workloads::{ShuffleModel, TABLE2};

fn main() {
    pnats_bench::usage_on_help("");
    const GB: f64 = (1u64 << 30) as f64;
    let inputs: Vec<f64> = TABLE2.iter().map(|j| j.input_bytes() as f64 / GB).collect();
    let shuffles: Vec<f64> = TABLE2
        .iter()
        .map(|j| ShuffleModel::for_app(j.app).expected_shuffle_bytes(j.input_bytes()) / GB)
        .collect();
    let input_cdf = Cdf::new(inputs);
    let shuffle_cdf = Cdf::new(shuffles.clone());
    print!(
        "{}",
        render_series(
            "Figure 3 — CDF of data size (GB)",
            "size_gb",
            &[
                ("input", input_cdf.steps()),
                ("shuffle", shuffle_cdf.steps()),
            ],
        )
    );
    let over50 = shuffles.iter().filter(|s| **s > 50.0).count() as f64 / 30.0;
    let over100 = shuffles.iter().filter(|s| **s > 100.0).count() as f64 / 30.0;
    let under10 = shuffles.iter().filter(|s| **s < 10.0).count() as f64 / 30.0;
    println!();
    println!("shuffle > 50 GB : {:.0}%   (paper: ~60%)", over50 * 100.0);
    println!("shuffle > 100 GB: {:.0}%   (paper: ~20%)", over100 * 100.0);
    println!("shuffle < 10 GB : {:.0}%   (paper: ~20%)", under10 * 100.0);
}
