//! Robustness extension: makespan degradation under injected node crashes.
//!
//! A nested sweep of seeded [`FaultPlan`]s — plan *k* contains the first
//! *k* crashes of one master schedule, so each step strictly adds faults —
//! run under the paper's three-way scheduler comparison. Every report is
//! replayed through the invariant oracle ([`pnats_sim::check_report`]):
//! any violated conservation law (duplicate map completion, completion on
//! a dead node, leaked offer) aborts the bench. Per scheduler, the
//! makespan series must be monotone in the crash count up to a slack for
//! scheduling noise ([`pnats_sim::check_makespan_monotone`]).
//!
//! Usage: `fault_sweep [seed] [--smoke]` — `--smoke` shrinks the sweep to
//! two crash counts on a reduced batch (the CI configuration).

use pnats_bench::harness::{hdfs_config, mean_jct, run_matrix, Run, PAPER_SCHEDULERS};
use pnats_core::faults::FaultPlan;
use pnats_metrics::render_table;
use pnats_sim::{check_makespan_monotone, check_report, JobInput};
use pnats_workloads::{scaled_batch, table2_batch, AppKind};

/// Crashed nodes stay down for this long (the sweep models fail-recover,
/// not permanent loss, so every batch still completes).
const MTTR_S: f64 = 400.0;
/// Crashes land in this window of simulated time — strictly inside the
/// batch's active period under every scheduler (the fault-free Terasort
/// makespan is ~690 s at its shortest), so every planned crash fires.
const CRASH_WINDOW: (f64, f64) = (100.0, 600.0);
/// Tolerated relative makespan *decrease* per added crash: a crash can
/// accidentally improve placement (killing work off a congested node), so
/// monotonicity only holds up to scheduling noise.
const MONOTONE_SLACK: f64 = 0.25;

fn main() {
    pnats_bench::usage_on_help("[--smoke] [seed]");
    let mut seed: u64 = 42;
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else if let Ok(s) = arg.parse() {
            seed = s;
        }
    }

    let crash_counts: &[usize] = if smoke { &[0, 2] } else { &[0, 1, 2, 4, 8] };
    // The smoke batch finishes in ~30 simulated seconds, so its crash
    // window (and repair time) shrink to match.
    let (inputs, window, mttr) = if smoke {
        (JobInput::from_batch(&scaled_batch(AppKind::Terasort, 2, 20)), (5.0, 20.0), 15.0)
    } else {
        (JobInput::from_batch(&table2_batch(AppKind::Terasort)), CRASH_WINDOW, MTTR_S)
    };
    let n_nodes = hdfs_config(seed).n_nodes;
    // One master schedule; plan k keeps its first k crashes, so the sweep
    // is nested and the monotonicity check is meaningful.
    let master = FaultPlan::with_random_crashes(
        *crash_counts.last().unwrap(),
        n_nodes,
        window,
        Some(mttr),
        seed,
    );

    let mut runs = Vec::new();
    for kind in PAPER_SCHEDULERS {
        for &k in crash_counts {
            let mut cfg = hdfs_config(seed);
            cfg.faults = FaultPlan { crashes: master.crashes[..k].to_vec(), ..FaultPlan::none() };
            runs.push(Run::new(kind, cfg, inputs.clone()));
        }
    }
    let reports = run_matrix(runs);

    // Every report must satisfy the conservation laws; with recovering
    // crashes every batch must still complete, and — the window sitting
    // strictly inside the active period — every planned crash must fire.
    for (i, r) in reports.iter().enumerate() {
        if let Err(e) = check_report(r, &inputs) {
            eprintln!("FATAL: oracle violation under {}: {e}", r.scheduler);
            std::process::exit(1);
        }
        if !r.all_completed() {
            eprintln!(
                "FATAL: {} completed only {}/{} jobs (crashes all recover; none may fail)",
                r.scheduler, r.jobs_completed, r.jobs_submitted
            );
            std::process::exit(1);
        }
        let k = crash_counts[i % crash_counts.len()] as u64;
        if r.counters.node_crashes != k {
            eprintln!(
                "FATAL: {} injected {} crashes but planned {k} — window outside the run?",
                r.scheduler, r.counters.node_crashes
            );
            std::process::exit(1);
        }
    }

    let mut rows = Vec::new();
    for (s, kind) in PAPER_SCHEDULERS.iter().enumerate() {
        let slice = &reports[s * crash_counts.len()..(s + 1) * crash_counts.len()];
        let makespans: Vec<f64> = slice.iter().map(|r| r.trace.makespan()).collect();
        if let Err(e) = check_makespan_monotone(&makespans, MONOTONE_SLACK) {
            eprintln!("FATAL: {} {e}", kind.label());
            std::process::exit(1);
        }
        let base = makespans[0];
        for (i, (&k, r)) in crash_counts.iter().zip(slice).enumerate() {
            rows.push(vec![
                kind.label().to_string(),
                k.to_string(),
                format!("{:.0}", makespans[i]),
                format!("{:+.1}%", 100.0 * (makespans[i] - base) / base),
                format!("{:.0}", mean_jct(r)),
                r.counters.reexecuted_maps.to_string(),
                r.counters.retries.to_string(),
            ]);
        }
    }
    print!(
        "{}",
        render_table(
            "Fault sweep — Terasort batch, makespan vs injected node crashes",
            &[
                "scheduler",
                "crashes",
                "makespan (s)",
                "vs 0 crashes",
                "mean JCT (s)",
                "reexec maps",
                "retries",
            ],
            &rows,
        )
    );
}
