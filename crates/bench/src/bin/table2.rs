//! Table II: the 30-job catalogue (name, input size, map/reduce counts).
//!
//! Ours is the paper's verbatim; this binary regenerates the table plus the
//! derived block sizes our simulated HDFS uses.

use pnats_metrics::render_table;
use pnats_workloads::TABLE2;

fn main() {
    pnats_bench::usage_on_help("");
    let rows: Vec<Vec<String>> = TABLE2
        .iter()
        .map(|j| {
            vec![
                format!("{:02}", j.id),
                j.name(),
                j.maps.to_string(),
                j.reduces.to_string(),
                format!("{}", (j.input_bytes() / j.maps as u64) >> 20),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Table II — the 30 evaluation jobs",
            &["JobID", "Job", "Map (#)", "Reduce (#)", "Block (MB)"],
            &rows,
        )
    );
}
