//! # pnats-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see `src/bin/`), all built on
//! this crate's [`harness`]: standard cluster configurations, scheduler
//! constructors and batch runners. `repro_all` chains every experiment and
//! prints an EXPERIMENTS.md-ready report.
//!
//! ## Standard configurations
//!
//! * [`harness::cloud_config`] — the **headline** configuration for the
//!   completion-time experiments (Figures 4–6): the paper's 60-node
//!   testbed shape with the cloud/NAS data layout of its §I motivation
//!   (replicas confined to each job's ingest subset) and shared-cluster
//!   background traffic. This is the regime where fine-grained
//!   network-aware placement has room to act.
//! * [`harness::hdfs_config`] — stock HDFS rack-aware layout on a quiet
//!   cluster; used for the locality experiments (Table III, Figure 7) and
//!   as a sensitivity point for the JCT experiments.
//!
//! Both are documented, deterministic and seed-parameterized.

pub mod failover;
pub mod harness;

pub use harness::{
    batch_runs, cloud_config, harness_threads, hdfs_config, make_placer, mean_jct, parallel_map,
    patch_bench_section, run_batch, run_batches, run_matrix, run_matrix_with, trace_path,
    usage_on_help, PlacerSpec,
    Run,
    SchedulerKind,
    ALL_SCHEDULERS,
    PAPER_SCHEDULERS,
};
