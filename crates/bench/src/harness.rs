//! Shared experiment machinery: standard configs, scheduler zoo, runners.

use pnats_baselines::{
    CouplingPlacer, FairDelayPlacer, FifoGreedyPlacer, LartsPlacer, MinCostPlacer, QuincyPlacer,
    RandomPlacer,
};
use pnats_core::estimate::IntermediateEstimator;
use pnats_core::placer::TaskPlacer;
use pnats_core::prob::ProbabilityModel;
use pnats_core::prob_sched::{ProbConfig, ProbabilisticPlacer};
use pnats_sim::config::background_traffic;
use pnats_sim::{DataLayout, JobInput, SimConfig, SimReport, Simulation};
use pnats_workloads::{table2_batch, AppKind};

/// The headline configuration for the completion-time experiments
/// (Figures 4, 5, 6): the paper's testbed scale (60 nodes, 4 map + 2
/// reduce slots, replication 2, one logical rack over three oversubscribed
/// switches) in the **cloud/NAS data regime** its introduction motivates —
/// each job's replicas confined to a ~20 % ingest subset — plus eight lanes
/// of background traffic standing in for Palmetto's co-tenants.
pub fn cloud_config(seed: u64) -> SimConfig {
    let mut c = SimConfig::paper_testbed();
    c.reduce_rate_bps = 60e6;
    c.map_rate_bps = 8e6;
    c.ingest_fraction = 0.2;
    c.data_layout = DataLayout::IngestConfined;
    c.map_candidate_window = 32;
    c.heartbeat_s = 1.0;
    c.max_sim_time = 50_000.0;
    c.seed = seed;
    c.background = background_traffic(8, 8_000.0, c.n_nodes, 999 + seed);
    c
}

/// The stock-HDFS configuration: rack-aware replica placement over the
/// whole cluster, quiet network. Used for the locality experiments
/// (Table III, Figure 7) — matching the paper's statement that "the
/// generated files are stored in slave nodes with the replication factor
/// being set to 2" — and as a sensitivity point for the JCT experiments.
pub fn hdfs_config(seed: u64) -> SimConfig {
    let mut c = cloud_config(seed);
    c.data_layout = DataLayout::HdfsRackAware;
    c.background.clear();
    c
}

/// The schedulers the experiments compare.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SchedulerKind {
    /// The paper's probabilistic network-aware scheduler (`P_min = 0.4`).
    Probabilistic,
    /// Coupling Scheduler (Tan et al.).
    Coupling,
    /// Hadoop Fair Scheduler with delay scheduling.
    Fair,
    /// Deterministic fine-grained min-cost (ablation).
    MinCost,
    /// FIFO / greedy locality.
    Fifo,
    /// LARTS-style reduce-locality scheduler.
    Larts,
    /// Quincy-style global min-cost matching (expensive per decision).
    Quincy,
    /// Uniform random placement (floor).
    Random,
}

/// The paper's three-way comparison.
pub const PAPER_SCHEDULERS: [SchedulerKind; 3] = [
    SchedulerKind::Probabilistic,
    SchedulerKind::Coupling,
    SchedulerKind::Fair,
];

/// Everything, for the extended comparisons.
pub const ALL_SCHEDULERS: [SchedulerKind; 8] = [
    SchedulerKind::Probabilistic,
    SchedulerKind::Coupling,
    SchedulerKind::Fair,
    SchedulerKind::MinCost,
    SchedulerKind::Fifo,
    SchedulerKind::Larts,
    SchedulerKind::Quincy,
    SchedulerKind::Random,
];

impl SchedulerKind {
    /// Display name matching the paper's terminology.
    pub fn label(self) -> &'static str {
        match self {
            SchedulerKind::Probabilistic => "probabilistic",
            SchedulerKind::Coupling => "coupling",
            SchedulerKind::Fair => "fair",
            SchedulerKind::MinCost => "mincost",
            SchedulerKind::Fifo => "fifo",
            SchedulerKind::Larts => "larts",
            SchedulerKind::Quincy => "quincy",
            SchedulerKind::Random => "random",
        }
    }
}

/// Instantiate a fresh placer of the given kind, with heartbeat-dependent
/// baselines matched to `cfg`.
pub fn make_placer(kind: SchedulerKind, cfg: &SimConfig) -> Box<dyn TaskPlacer> {
    match kind {
        SchedulerKind::Probabilistic => Box::new(ProbabilisticPlacer::paper()),
        SchedulerKind::Coupling => {
            Box::new(CouplingPlacer::new(0.8, 0.4, 3, cfg.heartbeat_s))
        }
        SchedulerKind::Fair => Box::new(FairDelayPlacer::hadoop_defaults()),
        SchedulerKind::MinCost => Box::new(MinCostPlacer::new()),
        SchedulerKind::Fifo => Box::new(FifoGreedyPlacer),
        SchedulerKind::Larts => Box::new(LartsPlacer::default()),
        SchedulerKind::Quincy => Box::new(QuincyPlacer),
        SchedulerKind::Random => Box::new(RandomPlacer),
    }
}

/// A probabilistic placer with a custom configuration (for sweeps).
pub fn make_probabilistic(p_min: f64, model: ProbabilityModel, est: IntermediateEstimator) -> Box<dyn TaskPlacer> {
    Box::new(ProbabilisticPlacer::new(ProbConfig { p_min, model, estimator: est }))
}

/// Run one application batch (the paper's Table II jobs for `app`) under
/// `kind` on `cfg`.
pub fn run_batch(app: AppKind, kind: SchedulerKind, cfg: SimConfig) -> SimReport {
    let inputs = JobInput::from_batch(&table2_batch(app));
    let placer = make_placer(kind, &cfg);
    Simulation::new(cfg, placer).run(&inputs)
}

/// Run all three batches separately (as the paper does) under `kind`,
/// returning reports in [Wordcount, Terasort, Grep] order.
pub fn run_batches(kind: SchedulerKind, cfg_for: impl Fn() -> SimConfig) -> Vec<SimReport> {
    AppKind::ALL
        .iter()
        .map(|app| run_batch(*app, kind, cfg_for()))
        .collect()
}

/// Mean job completion time of a report (seconds).
pub fn mean_jct(report: &SimReport) -> f64 {
    let jobs = &report.trace.jobs;
    if jobs.is_empty() {
        return f64::NAN;
    }
    jobs.iter().map(|j| j.jct()).sum::<f64>() / jobs.len() as f64
}

/// Per-job completion times keyed by job name (for paired reductions —
/// Figure 5 compares the *same* job across schedulers).
pub fn jct_by_name(report: &SimReport) -> Vec<(String, f64)> {
    let mut v: Vec<(String, f64)> = report
        .trace
        .jobs
        .iter()
        .map(|j| (j.name.clone(), j.jct()))
        .collect();
    v.sort_by(|a, b| a.0.cmp(&b.0));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnats_sim::TaskKind;

    /// A fast, shrunken variant of the cloud config for harness tests.
    fn mini_cloud(seed: u64) -> SimConfig {
        let mut c = cloud_config(seed);
        c.n_nodes = 8;
        c.background = background_traffic(2, 500.0, 8, seed);
        c
    }

    #[test]
    fn standard_configs_are_paper_scale() {
        let c = cloud_config(1);
        assert_eq!(c.n_nodes, 60);
        assert_eq!(c.data_layout, DataLayout::IngestConfined);
        assert!(!c.background.is_empty());
        let h = hdfs_config(1);
        assert_eq!(h.data_layout, DataLayout::HdfsRackAware);
        assert!(h.background.is_empty());
    }

    #[test]
    fn all_schedulers_instantiate_and_label_uniquely() {
        let cfg = cloud_config(1);
        let mut labels: Vec<&str> = ALL_SCHEDULERS
            .iter()
            .map(|k| {
                let p = make_placer(*k, &cfg);
                assert_eq!(p.name(), k.label());
                k.label()
            })
            .collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), ALL_SCHEDULERS.len());
    }

    #[test]
    fn mini_batch_runs_under_every_scheduler() {
        use pnats_workloads::scaled_batch;
        for kind in ALL_SCHEDULERS {
            let cfg = mini_cloud(7);
            let inputs = JobInput::from_batch(&scaled_batch(AppKind::Grep, 2, 20));
            let placer = make_placer(kind, &cfg);
            let r = Simulation::new(cfg, placer).run(&inputs);
            assert!(r.all_completed(), "{kind:?} failed to finish");
            assert!(r.trace.tasks_of(TaskKind::Map).count() > 0);
        }
    }

    #[test]
    fn jct_by_name_is_sorted_and_complete() {
        use pnats_workloads::scaled_batch;
        let cfg = mini_cloud(3);
        let inputs = JobInput::from_batch(&scaled_batch(AppKind::Wordcount, 3, 20));
        let placer = make_placer(SchedulerKind::Fifo, &cfg);
        let r = Simulation::new(cfg, placer).run(&inputs);
        let v = jct_by_name(&r);
        assert_eq!(v.len(), 3);
        assert!(v.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}
