//! Shared experiment machinery: standard configs, scheduler zoo, runners.
//!
//! ## The parallel run matrix
//!
//! Every experiment is a matrix of **independent** simulation runs — one
//! per `(scheduler, config, batch)` cell — whose results are only combined
//! at print time. [`run_matrix`] executes such a matrix across all cores
//! with plain `std::thread::scope` workers: each run builds its placer
//! from a [`PlacerSpec`] *inside* its worker and the simulation seeds its
//! own `SmallRng` from `cfg.seed`, so no RNG stream is shared and results
//! are identical to a serial execution regardless of thread interleaving.
//! Results come back in matrix order; `PNATS_THREADS=1` forces the serial
//! path (and any other value pins the worker count).

use pnats_baselines::{
    CouplingPlacer, FairDelayPlacer, FifoGreedyPlacer, LartsPlacer, MinCostPlacer, QuincyPlacer,
    RandomPlacer,
};
use pnats_core::estimate::IntermediateEstimator;
use pnats_core::placer::TaskPlacer;
use pnats_core::prob::ProbabilityModel;
use pnats_core::prob_sched::{ProbConfig, ProbabilisticPlacer};
use pnats_obs::{InMemorySink, SchedCounters};
use pnats_sim::config::background_traffic;
use pnats_sim::{DataLayout, JobInput, SimConfig, SimReport, Simulation};
use pnats_workloads::{table2_batch, AppKind};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The headline configuration for the completion-time experiments
/// (Figures 4, 5, 6): the paper's testbed scale (60 nodes, 4 map + 2
/// reduce slots, replication 2, one logical rack over three oversubscribed
/// switches) in the **cloud/NAS data regime** its introduction motivates —
/// each job's replicas confined to a ~20 % ingest subset — plus eight lanes
/// of background traffic standing in for Palmetto's co-tenants.
pub fn cloud_config(seed: u64) -> SimConfig {
    let mut c = SimConfig::paper_testbed();
    c.reduce_rate_bps = 60e6;
    c.map_rate_bps = 8e6;
    c.ingest_fraction = 0.2;
    c.data_layout = DataLayout::IngestConfined;
    c.map_candidate_window = 32;
    c.heartbeat_s = 1.0;
    c.max_sim_time = 50_000.0;
    c.seed = seed;
    c.background = background_traffic(8, 8_000.0, c.n_nodes, 999 + seed);
    c
}

/// The stock-HDFS configuration: rack-aware replica placement over the
/// whole cluster, quiet network. Used for the locality experiments
/// (Table III, Figure 7) — matching the paper's statement that "the
/// generated files are stored in slave nodes with the replication factor
/// being set to 2" — and as a sensitivity point for the JCT experiments.
pub fn hdfs_config(seed: u64) -> SimConfig {
    let mut c = cloud_config(seed);
    c.data_layout = DataLayout::HdfsRackAware;
    c.background.clear();
    c
}

/// The schedulers the experiments compare.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SchedulerKind {
    /// The paper's probabilistic network-aware scheduler (`P_min = 0.4`).
    Probabilistic,
    /// Coupling Scheduler (Tan et al.).
    Coupling,
    /// Hadoop Fair Scheduler with delay scheduling.
    Fair,
    /// Deterministic fine-grained min-cost (ablation).
    MinCost,
    /// FIFO / greedy locality.
    Fifo,
    /// LARTS-style reduce-locality scheduler.
    Larts,
    /// Quincy-style global min-cost matching (expensive per decision).
    Quincy,
    /// Uniform random placement (floor).
    Random,
}

/// The paper's three-way comparison.
pub const PAPER_SCHEDULERS: [SchedulerKind; 3] = [
    SchedulerKind::Probabilistic,
    SchedulerKind::Coupling,
    SchedulerKind::Fair,
];

/// Everything, for the extended comparisons.
pub const ALL_SCHEDULERS: [SchedulerKind; 8] = [
    SchedulerKind::Probabilistic,
    SchedulerKind::Coupling,
    SchedulerKind::Fair,
    SchedulerKind::MinCost,
    SchedulerKind::Fifo,
    SchedulerKind::Larts,
    SchedulerKind::Quincy,
    SchedulerKind::Random,
];

impl SchedulerKind {
    /// Display name matching the paper's terminology.
    pub fn label(self) -> &'static str {
        match self {
            SchedulerKind::Probabilistic => "probabilistic",
            SchedulerKind::Coupling => "coupling",
            SchedulerKind::Fair => "fair",
            SchedulerKind::MinCost => "mincost",
            SchedulerKind::Fifo => "fifo",
            SchedulerKind::Larts => "larts",
            SchedulerKind::Quincy => "quincy",
            SchedulerKind::Random => "random",
        }
    }
}

/// A scheduler description that can cross threads: `Copy + Send`, turned
/// into a live [`TaskPlacer`] inside the worker that runs it.
#[derive(Clone, Copy, Debug)]
pub enum PlacerSpec {
    /// One of the standard zoo, paper defaults.
    Kind(SchedulerKind),
    /// The probabilistic scheduler with explicit knobs (for sweeps).
    Probabilistic {
        /// `P_min` threshold.
        p_min: f64,
        /// Probability model.
        model: ProbabilityModel,
        /// Intermediate-size estimator.
        estimator: IntermediateEstimator,
    },
}

impl PlacerSpec {
    /// Instantiate the placer (heartbeat-dependent baselines read `cfg`).
    pub fn build(self, cfg: &SimConfig) -> Box<dyn TaskPlacer> {
        match self {
            PlacerSpec::Kind(kind) => make_placer(kind, cfg),
            PlacerSpec::Probabilistic { p_min, model, estimator } => {
                make_probabilistic(p_min, model, estimator)
            }
        }
    }
}

/// One cell of an experiment's run matrix: everything a worker thread
/// needs to execute the simulation from scratch.
#[derive(Clone, Debug)]
pub struct Run {
    /// Which scheduler to instantiate.
    pub placer: PlacerSpec,
    /// Full simulation configuration (carries the run's RNG seed).
    pub cfg: SimConfig,
    /// The job batch to submit.
    pub inputs: Vec<JobInput>,
    /// Record the run's decision trace into an in-memory sink (drained
    /// into [`SimReport::trace_jsonl`]). Counters accumulate either way.
    pub trace: bool,
}

impl Run {
    /// A run of `kind` with its paper-default knobs.
    pub fn new(kind: SchedulerKind, cfg: SimConfig, inputs: Vec<JobInput>) -> Self {
        Self::with_spec(PlacerSpec::Kind(kind), cfg, inputs)
    }

    /// A run with an explicit [`PlacerSpec`] (for sweeps).
    pub fn with_spec(placer: PlacerSpec, cfg: SimConfig, inputs: Vec<JobInput>) -> Self {
        Self { placer, cfg, inputs, trace: false }
    }

    /// Enable decision tracing for this run.
    pub fn traced(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Execute the cell (callable from any thread).
    pub fn execute(self) -> SimReport {
        let placer = self.placer.build(&self.cfg);
        let mut sim = Simulation::new(self.cfg, placer);
        if self.trace {
            sim = sim.with_trace(Box::new(InMemorySink::unbounded()));
        }
        sim.run(&self.inputs)
    }
}

/// Print a one-line usage summary and exit successfully when `--help` (or
/// `-h`) appears anywhere in the process arguments. Every experiment
/// binary calls this first thing in `main`, passing just its argument
/// synopsis (e.g. `"[seed]"`); the binary name is taken from `argv[0]`.
pub fn usage_on_help(synopsis: &str) {
    let mut argv = std::env::args();
    let argv0 = argv.next().unwrap_or_default();
    if !argv.any(|a| a == "--help" || a == "-h") {
        return;
    }
    let name = std::path::Path::new(&argv0)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("pnats-bench");
    println!("usage: {}", format!("{name} {synopsis}").trim_end());
    std::process::exit(0);
}

/// Insert (or replace) a single-line `"<name>": {…},` section in
/// `BENCH_harness.json`, preserving everything `repro_all` and other
/// section-patching binaries wrote. The file is line-oriented by
/// construction, so this is plain line surgery: the stale `"<name>":`
/// line (if any) is dropped and `section_line` is inserted before the
/// `"total_wall_s"` summary line (falling back to just before the
/// closing brace, or creating a minimal file when `repro_all` has not
/// run yet).
pub fn patch_bench_section(name: &str, section_line: &str) {
    let path = "BENCH_harness.json";
    let existing = std::fs::read_to_string(path)
        .unwrap_or_else(|_| "{\n  \"total_wall_s\": 0.000\n}\n".to_string());
    let marker = format!("\"{name}\":");
    let mut out: Vec<String> = Vec::new();
    let mut inserted = false;
    for line in existing.lines() {
        if line.trim_start().starts_with(&marker) {
            continue; // drop the stale entry
        }
        if !inserted && line.trim_start().starts_with("\"total_wall_s\"") {
            out.push(section_line.to_string());
            inserted = true;
        }
        out.push(line.to_string());
    }
    if !inserted {
        // No total_wall_s marker (hand-edited file): append before the
        // closing brace.
        let pos = out.iter().rposition(|l| l.trim() == "}").unwrap_or(out.len());
        out.insert(pos, section_line.trim_end_matches(',').to_string());
    }
    std::fs::write(path, out.join("\n") + "\n").expect("write BENCH_harness.json");
}

/// Worker count for [`run_matrix`]: `PNATS_THREADS` when set (minimum 1;
/// `1` disables parallelism entirely), otherwise the machine's available
/// parallelism.
pub fn harness_threads() -> usize {
    std::env::var("PNATS_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// Order-preserving parallel map over owned items.
///
/// Workers claim items by atomically incrementing a shared index, so there
/// is no per-item locking on the hot path and no work-stealing machinery;
/// results land in their item's slot, preserving input order exactly. With
/// `threads <= 1` (or a single item) this degenerates to a plain serial
/// loop on the calling thread.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().unwrap().take().expect("item claimed once");
                let r = f(item);
                *results[i].lock().unwrap() = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker filled slot"))
        .collect()
}

/// The decision-trace output path requested via the `PNATS_TRACE`
/// environment variable, if any. When set, [`run_matrix`] traces every run
/// and writes the concatenated JSONL (matrix order, so byte-identical
/// across thread counts) to this path.
pub fn trace_path() -> Option<String> {
    std::env::var("PNATS_TRACE").ok().filter(|s| !s.is_empty())
}

/// Execute a run matrix across [`harness_threads`] workers, returning
/// reports in matrix order. Results are identical to executing the runs
/// serially: every cell owns its config (and therefore its RNG seed) and
/// builds its placer privately, so nothing about the outcome depends on
/// scheduling.
///
/// Emits accounting lines on **stderr** (stdout stays byte-identical
/// across thread counts), aggregated by `repro_all` into
/// `BENCH_harness.json`:
///
/// * one `HARNESS runs=…` wall-clock line per matrix, and
/// * one `COUNTERS scheduler=<name> offers=… assigns=… skip_*=…` line per
///   scheduler, merged over the matrix's runs.
///
/// With `PNATS_TRACE=<path>` set, every run records its decision trace and
/// the concatenation (in matrix order) is written to `<path>`.
pub fn run_matrix(runs: Vec<Run>) -> Vec<SimReport> {
    let trace_to = trace_path();
    let runs: Vec<Run> = if trace_to.is_some() {
        runs.into_iter().map(Run::traced).collect()
    } else {
        runs
    };
    let reports = run_matrix_with(runs, Run::execute);
    // Per-scheduler counter aggregates, in first-appearance order so the
    // stderr line order is deterministic.
    let mut agg: Vec<(String, SchedCounters)> = Vec::new();
    for r in &reports {
        match agg.iter_mut().find(|(name, _)| *name == r.scheduler) {
            Some((_, c)) => c.merge(&r.counters),
            None => agg.push((r.scheduler.clone(), r.counters.clone())),
        }
    }
    for (name, c) in &agg {
        eprintln!("COUNTERS scheduler={name} {}", c.to_kv());
    }
    // Per-tenant aggregates for service-mode runs, merged by tenant name
    // in first-appearance order; batch runs (no tenancy) emit nothing.
    let mut tagg: Vec<(String, pnats_tenancy::TenantCounters)> = Vec::new();
    for r in &reports {
        for ts in &r.tenants {
            match tagg.iter_mut().find(|(name, _)| *name == ts.name) {
                Some((_, c)) => c.merge(&ts.counters),
                None => tagg.push((ts.name.clone(), ts.counters.clone())),
            }
        }
    }
    for (name, c) in &tagg {
        eprintln!("TENANTS tenant={name} {}", c.to_kv());
    }
    if let Some(path) = trace_to {
        let mut text = String::new();
        for r in &reports {
            if let Some(t) = &r.trace_jsonl {
                text.push_str(t);
            }
        }
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("PNATS_TRACE: failed to write {path}: {e}");
        }
    }
    reports
}

/// [`run_matrix`] with a custom per-run function — for experiments that
/// want to derive extra per-run data (e.g. per-run wall-clock) inside the
/// worker instead of keeping whole reports around.
pub fn run_matrix_with<R, F>(runs: Vec<Run>, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Run) -> R + Sync,
{
    let threads = harness_threads();
    let n = runs.len();
    let wall = Instant::now();
    let results = parallel_map(runs, threads, f);
    let wall_s = wall.elapsed().as_secs_f64();
    eprintln!(
        "HARNESS runs={n} threads={threads} wall_s={wall_s:.3} runs_per_s={:.3}",
        n as f64 / wall_s.max(1e-9)
    );
    results
}

/// Instantiate a fresh placer of the given kind, with heartbeat-dependent
/// baselines matched to `cfg`.
pub fn make_placer(kind: SchedulerKind, cfg: &SimConfig) -> Box<dyn TaskPlacer> {
    match kind {
        SchedulerKind::Probabilistic => Box::new(ProbabilisticPlacer::paper()),
        SchedulerKind::Coupling => {
            Box::new(CouplingPlacer::new(0.8, 0.4, 3, cfg.heartbeat_s))
        }
        SchedulerKind::Fair => Box::new(FairDelayPlacer::hadoop_defaults()),
        SchedulerKind::MinCost => Box::new(MinCostPlacer::new()),
        SchedulerKind::Fifo => Box::new(FifoGreedyPlacer),
        SchedulerKind::Larts => Box::new(LartsPlacer::default()),
        SchedulerKind::Quincy => Box::new(QuincyPlacer),
        SchedulerKind::Random => Box::new(RandomPlacer),
    }
}

/// A probabilistic placer with a custom configuration (for sweeps).
pub fn make_probabilistic(p_min: f64, model: ProbabilityModel, est: IntermediateEstimator) -> Box<dyn TaskPlacer> {
    Box::new(ProbabilisticPlacer::new(ProbConfig { p_min, model, estimator: est }))
}

/// Run one application batch (the paper's Table II jobs for `app`) under
/// `kind` on `cfg`.
pub fn run_batch(app: AppKind, kind: SchedulerKind, cfg: SimConfig) -> SimReport {
    let inputs = JobInput::from_batch(&table2_batch(app));
    let placer = make_placer(kind, &cfg);
    Simulation::new(cfg, placer).run(&inputs)
}

/// Run all three batches separately (as the paper does) under `kind`,
/// returning reports in [Wordcount, Terasort, Grep] order. Batches run in
/// parallel via [`run_matrix`].
pub fn run_batches(kind: SchedulerKind, cfg_for: impl Fn() -> SimConfig) -> Vec<SimReport> {
    run_matrix(batch_runs(kind, cfg_for))
}

/// The [Wordcount, Terasort, Grep] cells for `kind` — building block for
/// experiments that fold several schedulers into one [`run_matrix`] call.
pub fn batch_runs(kind: SchedulerKind, cfg_for: impl Fn() -> SimConfig) -> Vec<Run> {
    AppKind::ALL
        .iter()
        .map(|app| Run::new(kind, cfg_for(), JobInput::from_batch(&table2_batch(*app))))
        .collect()
}

/// Mean job completion time of a report (seconds).
pub fn mean_jct(report: &SimReport) -> f64 {
    let jobs = &report.trace.jobs;
    if jobs.is_empty() {
        return f64::NAN;
    }
    jobs.iter().map(|j| j.jct()).sum::<f64>() / jobs.len() as f64
}

/// Per-job completion times keyed by job name (for paired reductions —
/// Figure 5 compares the *same* job across schedulers).
pub fn jct_by_name(report: &SimReport) -> Vec<(String, f64)> {
    let mut v: Vec<(String, f64)> = report
        .trace
        .jobs
        .iter()
        .map(|j| (j.name.clone(), j.jct()))
        .collect();
    v.sort_by(|a, b| a.0.cmp(&b.0));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnats_sim::TaskKind;

    /// A fast, shrunken variant of the cloud config for harness tests.
    fn mini_cloud(seed: u64) -> SimConfig {
        let mut c = cloud_config(seed);
        c.n_nodes = 8;
        c.background = background_traffic(2, 500.0, 8, seed);
        c
    }

    #[test]
    fn standard_configs_are_paper_scale() {
        let c = cloud_config(1);
        assert_eq!(c.n_nodes, 60);
        assert_eq!(c.data_layout, DataLayout::IngestConfined);
        assert!(!c.background.is_empty());
        let h = hdfs_config(1);
        assert_eq!(h.data_layout, DataLayout::HdfsRackAware);
        assert!(h.background.is_empty());
    }

    #[test]
    fn all_schedulers_instantiate_and_label_uniquely() {
        let cfg = cloud_config(1);
        let mut labels: Vec<&str> = ALL_SCHEDULERS
            .iter()
            .map(|k| {
                let p = make_placer(*k, &cfg);
                assert_eq!(p.name(), k.label());
                k.label()
            })
            .collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), ALL_SCHEDULERS.len());
    }

    #[test]
    fn mini_batch_runs_under_every_scheduler() {
        use pnats_workloads::scaled_batch;
        for kind in ALL_SCHEDULERS {
            let cfg = mini_cloud(7);
            let inputs = JobInput::from_batch(&scaled_batch(AppKind::Grep, 2, 20));
            let placer = make_placer(kind, &cfg);
            let r = Simulation::new(cfg, placer).run(&inputs);
            assert!(r.all_completed(), "{kind:?} failed to finish");
            assert!(r.trace.tasks_of(TaskKind::Map).count() > 0);
        }
    }

    #[test]
    fn parallel_map_preserves_order_and_items() {
        let items: Vec<u64> = (0..100).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 7, 64] {
            assert_eq!(parallel_map(items.clone(), threads, |x| x * x), expect, "{threads} threads");
        }
        assert_eq!(parallel_map(Vec::<u64>::new(), 4, |x| x), Vec::<u64>::new());
    }

    #[test]
    fn run_matrix_matches_serial_execution() {
        use pnats_workloads::scaled_batch;
        // The same matrix executed serially on the calling thread and via
        // the multi-threaded path must produce identical reports: every
        // run owns its seeded RNG, so interleaving cannot matter.
        let mk_runs = || -> Vec<Run> {
            let mut runs = Vec::new();
            for (i, kind) in [SchedulerKind::Probabilistic, SchedulerKind::Fair].iter().enumerate()
            {
                for (j, app) in [AppKind::Grep, AppKind::Wordcount].iter().enumerate() {
                    runs.push(Run::new(
                        *kind,
                        mini_cloud(10 + (2 * i + j) as u64),
                        JobInput::from_batch(&scaled_batch(*app, 2, 20)),
                    ));
                }
            }
            runs.push(Run::with_spec(
                PlacerSpec::Probabilistic {
                    p_min: 0.2,
                    model: ProbabilityModel::Sigmoid,
                    estimator: IntermediateEstimator::CurrentSize,
                },
                mini_cloud(99),
                JobInput::from_batch(&scaled_batch(AppKind::Terasort, 2, 20)),
            ));
            runs
        };
        let serial: Vec<SimReport> = mk_runs().into_iter().map(Run::execute).collect();
        let parallel = parallel_map(mk_runs(), 4, Run::execute);
        assert_eq!(serial.len(), parallel.len());
        for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(s.jobs_completed, p.jobs_completed, "run {i}");
            assert_eq!(mean_jct(s).to_bits(), mean_jct(p).to_bits(), "run {i}: JCTs diverged");
            assert_eq!(s.trace.makespan().to_bits(), p.trace.makespan().to_bits(), "run {i}");
            assert_eq!(jct_by_name(s), jct_by_name(p), "run {i}: per-job times diverged");
        }
    }

    #[test]
    fn harness_threads_is_positive() {
        assert!(harness_threads() >= 1);
    }

    #[test]
    fn jct_by_name_is_sorted_and_complete() {
        use pnats_workloads::scaled_batch;
        let cfg = mini_cloud(3);
        let inputs = JobInput::from_batch(&scaled_batch(AppKind::Wordcount, 3, 20));
        let placer = make_placer(SchedulerKind::Fifo, &cfg);
        let r = Simulation::new(cfg, placer).run(&inputs);
        let v = jct_by_name(&r);
        assert_eq!(v.len(), 3);
        assert!(v.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}
