//! Shared OS-process tracker-kill harness: spawn a real `pnats-cluster`
//! tracker (journaled) plus a worker fleet, SIGKILL the tracker mid-job
//! (optionally one worker with it), restart it on the same address over
//! the same journal, and gate the recovered run on every recovery law.
//! Used by the `tracker_failover` bench and the `chaos_soak` ladder's
//! tracker-kill stage.

use pnats_cluster::{check_journal_recovery, read_journal, JournalState, ReportSummary};
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Kill every child on drop so a failing trial never leaks processes.
pub struct Reaper(pub Vec<Child>);
impl Drop for Reaper {
    fn drop(&mut self) {
        for c in &mut self.0 {
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

/// The `pnats-cluster` binary lives next to the bench binaries in the
/// target dir.
pub fn cluster_bin() -> Result<PathBuf, String> {
    let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = me.parent().ok_or("bench binary has no parent dir")?;
    let bin = dir.join("pnats-cluster");
    if bin.exists() {
        Ok(bin)
    } else {
        Err(format!("{} not built (build the pnats-cluster package first)", bin.display()))
    }
}

/// Everything one tracker-kill trial needs. Pacing fields must make the
/// job outlast `kill_after` — map pacing sleeps fire per 8 KiB consumed,
/// so `block_bytes` should span several pacing points.
pub struct KillTrial {
    /// Job seed (must match the engine reference the caller ran).
    pub seed: u64,
    /// Trial label for error messages.
    pub label: String,
    /// Tracker SIGKILL offset from job start.
    pub kill_after: Duration,
    /// Also SIGKILL the last worker with the tracker: the recovered
    /// incarnation must expire the never-reattaching peer after the
    /// reattach grace and re-execute its work.
    pub kill_worker: bool,
    /// Worker count.
    pub nodes: usize,
    /// Reduce count.
    pub reduces: usize,
    /// Heartbeat period in ms.
    pub heartbeat_ms: u64,
    /// Input split size.
    pub block_bytes: usize,
    /// Map pacing cost.
    pub cpu_us_per_kib: u64,
}

fn spawn_tracker(
    bin: &Path,
    listen: &str,
    t: &KillTrial,
    input: &Path,
    journal: &Path,
    report: &Path,
) -> std::io::Result<Child> {
    Command::new(bin)
        .args([
            "tracker",
            "--listen", listen,
            "--job", "wordcount",
            "--input", input.to_str().unwrap(),
            "--nodes", &t.nodes.to_string(),
            "--reduces", &t.reduces.to_string(),
            "--block-bytes", &t.block_bytes.to_string(),
            "--heartbeat-ms", &t.heartbeat_ms.to_string(),
            "--cpu-us-per-kib", &t.cpu_us_per_kib.to_string(),
            "--seed", &t.seed.to_string(),
            "--max-wall-s", "60",
            "--journal", journal.to_str().unwrap(),
            "--report", report.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .spawn()
}

/// Read the `tracker listening on ADDR` line; `None` means the process
/// died before announcing (e.g. the old port still draining on a rebind).
fn scrape_addr(tracker: &mut Child) -> Option<String> {
    let out = tracker.stdout.take()?;
    let mut line = String::new();
    if BufReader::new(out).read_line(&mut line).ok()? == 0 {
        return None;
    }
    Some(line.trim().rsplit(' ').next()?.to_string())
}

/// Run one kill-and-recover trial under `dir` (created; caller cleans up).
/// `input` is written to disk here; `expected` is the engine reference
/// output the recovered job must reproduce byte-for-byte. Returns the
/// measured kill→first-post-recovery-assignment latency, or `None` when
/// the recovered incarnation inherited every live assignment and never
/// had to place fresh work.
pub fn run_kill_trial(
    bin: &Path,
    dir: &Path,
    trial: &KillTrial,
    input: &str,
    expected: &[(String, String)],
) -> Result<Option<f64>, String> {
    let label = &trial.label;
    let input_path = dir.join("input.txt");
    let journal = dir.join("job.journal");
    let report_path = dir.join("report.txt");
    std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
    std::fs::write(&input_path, input).map_err(|e| format!("write input: {e}"))?;
    let _ = std::fs::remove_file(&journal);

    let mut tracker = spawn_tracker(bin, "127.0.0.1:0", trial, &input_path, &journal, &report_path)
        .map_err(|e| format!("spawn tracker: {e}"))?;
    let addr = match scrape_addr(&mut tracker) {
        Some(a) => a,
        None => return Err("first tracker died before announcing its address".into()),
    };
    let mut reaper = Reaper(vec![tracker]);
    for node in 0..trial.nodes as u32 {
        let w = Command::new(bin)
            .args([
                "worker",
                "--node", &node.to_string(),
                "--tracker", &addr,
                "--heartbeat-ms", &trial.heartbeat_ms.to_string(),
                // Orphans must outlast the harness's kill→restart gap by a
                // wide margin.
                "--orphan-grace-ms", "30000",
            ])
            .spawn()
            .map_err(|e| format!("spawn worker {node}: {e}"))?;
        reaper.0.push(w);
    }

    std::thread::sleep(trial.kill_after);
    reaper.0[0].kill().map_err(|e| format!("SIGKILL tracker: {e}"))?;
    let _ = reaper.0[0].wait();
    let t_kill = Instant::now();
    let dead_worker = if trial.kill_worker {
        let last = reaper.0.len() - 1;
        reaper.0[last].kill().map_err(|e| format!("SIGKILL worker: {e}"))?;
        let _ = reaper.0[last].wait();
        Some(last - 1) // node id of the worker that died with the tracker
    } else {
        None
    };

    // The surviving workers must ride out the outage as orphans, not exit.
    for (i, w) in reaper.0[1..].iter_mut().enumerate() {
        if Some(i) == dead_worker {
            continue;
        }
        if let Some(st) = w.try_wait().map_err(|e| format!("poll worker {i}: {e}"))? {
            return Err(format!("{label}: worker {i} exited during the outage ({st:?})"));
        }
    }

    // Restart on the SAME address; TIME_WAIT may make the first rebind
    // attempts lose the port, so retry until the announcement line lands.
    let mut restarted = None;
    for _ in 0..100 {
        let mut t = spawn_tracker(bin, &addr, trial, &input_path, &journal, &report_path)
            .map_err(|e| format!("respawn tracker: {e}"))?;
        match scrape_addr(&mut t) {
            Some(_) => {
                restarted = Some(t);
                break;
            }
            None => {
                let _ = t.wait();
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
    let restarted = restarted.ok_or(format!("{label}: could not rebind {addr}"))?;
    let spawn_to_kill_ms = t_kill.elapsed().as_secs_f64() * 1e3;
    reaper.0[0] = restarted;

    let deadline = Instant::now() + Duration::from_secs(90);
    let status = loop {
        if let Some(st) = reaper.0[0].try_wait().map_err(|e| format!("poll tracker: {e}"))? {
            break st;
        }
        if Instant::now() >= deadline {
            return Err(format!("{label}: recovered tracker did not finish in time"));
        }
        std::thread::sleep(Duration::from_millis(25));
    };
    if !status.success() {
        return Err(format!("{label}: recovered tracker exited with {status:?}"));
    }

    let text = std::fs::read_to_string(&report_path).map_err(|e| format!("read report: {e}"))?;
    let summary = ReportSummary::parse(&text).ok_or("malformed report")?;
    let c = &summary.counters;
    if summary.failed {
        return Err(format!("{label}: recovered job reported failure"));
    }
    if summary.output != expected {
        return Err(format!("{label}: OUTPUT DIVERGED from the engine reference"));
    }
    if c.tracker_restarts != 1 || c.journal_replays != 1 {
        return Err(format!(
            "{label}: expected exactly one restart+replay, got {} and {}",
            c.tracker_restarts, c.journal_replays
        ));
    }
    if c.worker_reattaches == 0 {
        return Err(format!("{label}: no worker re-attached ({})", c.to_kv()));
    }

    // The journal is the recovery record: it must replay cleanly, resolve
    // every pre-crash assignment, and fold deterministically.
    let records = read_journal(&journal).map_err(|e| format!("read journal: {e}"))?;
    check_journal_recovery(&records).map_err(|e| format!("{label}: journal law: {e}"))?;
    let a = JournalState::from_records(&records).map_err(|e| format!("{label}: replay: {e}"))?;
    let b = JournalState::from_records(&records).unwrap();
    if a.dump() != b.dump() {
        return Err(format!("{label}: journal replay is not deterministic"));
    }

    Ok(summary.first_assign_ms.map(|ms| spawn_to_kill_ms + ms as f64))
}
