//! Placement-decision latency per scheduler: the full Algorithm 1/2 path
//! (candidate scan, cost + average, probability, draw) against the
//! baselines' decision paths, at realistic candidate/cluster sizes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pnats_baselines::{CouplingPlacer, FairDelayPlacer, MinCostPlacer};
use pnats_core::context::{
    MapCandidate, MapSchedContext, ReduceCandidate, ReduceSchedContext, ShuffleSource,
};
use pnats_core::placer::TaskPlacer;
use pnats_core::prob_sched::ProbabilisticPlacer;
use pnats_core::types::{JobId, MapTaskId, ReduceTaskId};
use pnats_net::{DistanceMatrix, NodeId, Topology};
use rand::rngs::SmallRng;
use rand::SeedableRng;

struct Fixture {
    h: DistanceMatrix,
    layout: pnats_net::ClusterLayout,
    map_cands: Vec<MapCandidate>,
    reduce_cands: Vec<ReduceCandidate>,
    free: Vec<NodeId>,
}

fn fixture(n_nodes: usize, n_cands: usize) -> Fixture {
    let topo = Topology::palmetto_slice(n_nodes, 125e6);
    let h = DistanceMatrix::hops(&topo);
    let layout = topo.layout().clone();
    let map_cands: Vec<MapCandidate> = (0..n_cands)
        .map(|i| MapCandidate {
            task: MapTaskId { job: JobId(0), index: i as u32 },
            block_size: 128 << 20,
            replicas: vec![
                NodeId((i % n_nodes) as u32),
                NodeId(((i * 7 + 1) % n_nodes) as u32),
            ],
        })
        .collect();
    let reduce_cands: Vec<ReduceCandidate> = (0..n_cands.min(16))
        .map(|i| ReduceCandidate {
            task: ReduceTaskId { job: JobId(0), index: i as u32 },
            sources: (0..n_nodes)
                .map(|s| ShuffleSource {
                    node: NodeId(s as u32),
                    current_bytes: (s * i + 1) as f64 * 1e5,
                    input_read: 64 << 20,
                    input_total: 128 << 20,
                })
                .collect(),
        })
        .collect();
    let free: Vec<NodeId> = (0..n_nodes as u32).map(NodeId).collect();
    Fixture { h, layout, map_cands, reduce_cands, free }
}

type PlacerFactory = Box<dyn Fn() -> Box<dyn TaskPlacer>>;

fn bench_place(c: &mut Criterion) {
    let fx = fixture(60, 32);
    let mut group = c.benchmark_group("placement");

    let placers: Vec<(&str, PlacerFactory)> = vec![
        ("probabilistic", Box::new(|| Box::new(ProbabilisticPlacer::paper()))),
        ("coupling", Box::new(|| Box::new(CouplingPlacer::paper()))),
        ("fair", Box::new(|| Box::new(FairDelayPlacer::hadoop_defaults()))),
        ("mincost", Box::new(|| Box::new(MinCostPlacer::new()))),
    ];
    for (name, make) in &placers {
        group.bench_with_input(BenchmarkId::new("map_offer", name), name, |b, _| {
            let mut placer = make();
            let mut rng = SmallRng::seed_from_u64(1);
            let ctx =
                MapSchedContext::new(JobId(0), &fx.map_cands, &fx.free, &fx.h, &fx.layout);
            b.iter(|| black_box(placer.place_map(&ctx, NodeId(5), &mut rng)));
        });
        group.bench_with_input(BenchmarkId::new("reduce_offer", name), name, |b, _| {
            let mut placer = make();
            let mut rng = SmallRng::seed_from_u64(1);
            let ctx =
                ReduceSchedContext::new(JobId(0), &fx.reduce_cands, &fx.free, &fx.h, &fx.layout)
                    .map_phase(0.5, 100, 200)
                    .reduce_phase(4, 16)
                    .at(10.0);
            b.iter(|| black_box(placer.place_reduce(&ctx, NodeId(5), &mut rng)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_place);
criterion_main!(benches);
