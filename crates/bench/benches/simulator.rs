//! Whole-simulator throughput: simulated-seconds per wall-second on a
//! scaled batch — the number that bounds experiment turnaround.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pnats_bench::harness::{cloud_config, make_placer, SchedulerKind};
use pnats_sim::{JobInput, Simulation};
use pnats_workloads::{scaled_batch, AppKind};

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    for kind in [SchedulerKind::Probabilistic, SchedulerKind::Fair] {
        group.bench_with_input(
            BenchmarkId::new("scaled_wordcount_batch", kind.label()),
            &kind,
            |b, &kind| {
                let inputs = JobInput::from_batch(&scaled_batch(AppKind::Wordcount, 3, 10));
                b.iter(|| {
                    let mut cfg = cloud_config(42);
                    cfg.n_nodes = 20;
                    // Regenerate for the shrunken cluster: the stock cloud
                    // profile references 60 node ids.
                    cfg.background =
                        pnats_sim::config::background_traffic(2, 2_000.0, 20, 42);
                    let placer = make_placer(kind, &cfg);
                    let report = Simulation::new(cfg, placer).run(&inputs);
                    black_box(report.sim_end)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
