//! Microbenchmarks of the transmission cost model (Formulas 1–3): the
//! per-decision arithmetic that bounds how often the JobTracker can make
//! fine-grained placement decisions.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pnats_core::context::{MapCandidate, ReduceCandidate, ShuffleSource};
use pnats_core::cost::{map_cost, map_cost_avg, reduce_cost};
use pnats_core::estimate::IntermediateEstimator;
use pnats_core::types::{JobId, MapTaskId, ReduceTaskId};
use pnats_net::{DistanceMatrix, NodeId, Topology};

fn fixtures(n_nodes: usize, n_sources: usize) -> (DistanceMatrix, MapCandidate, ReduceCandidate, Vec<NodeId>) {
    let topo = Topology::palmetto_slice(n_nodes, 125e6);
    let h = DistanceMatrix::hops(&topo);
    let map = MapCandidate {
        task: MapTaskId { job: JobId(0), index: 0 },
        block_size: 128 << 20,
        replicas: vec![NodeId(3 % n_nodes as u32), NodeId(7 % n_nodes as u32)],
    };
    let reduce = ReduceCandidate {
        task: ReduceTaskId { job: JobId(0), index: 0 },
        sources: (0..n_sources)
            .map(|i| ShuffleSource {
                node: NodeId((i % n_nodes) as u32),
                current_bytes: 1e6 + i as f64,
                input_read: 64 << 20,
                input_total: 128 << 20,
            })
            .collect(),
    };
    let free: Vec<NodeId> = (0..n_nodes as u32).map(NodeId).collect();
    (h, map, reduce, free)
}

fn bench_costs(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost_model");
    for n in [20usize, 60, 200] {
        let (h, map, reduce, free) = fixtures(n, n);
        group.bench_with_input(BenchmarkId::new("map_cost", n), &n, |b, _| {
            b.iter(|| black_box(map_cost(black_box(&map), NodeId(1), &h)));
        });
        group.bench_with_input(BenchmarkId::new("map_cost_avg", n), &n, |b, _| {
            b.iter(|| black_box(map_cost_avg(black_box(&map), &free, &h)));
        });
        group.bench_with_input(BenchmarkId::new("reduce_cost", n), &n, |b, _| {
            b.iter(|| {
                black_box(reduce_cost(
                    black_box(&reduce),
                    NodeId(1),
                    &h,
                    IntermediateEstimator::ProgressExtrapolated,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_costs);
criterion_main!(benches);
