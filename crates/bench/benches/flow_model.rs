//! Max-min fair flow allocation throughput: the progressive-filling pass
//! that runs on every transfer arrival/departure in the simulator.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pnats_net::{FlowNetwork, NodeId, RoutingTable, Topology};

fn bench_fill(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_model");
    for &(nodes, flows) in &[(20usize, 50usize), (60, 200), (60, 600)] {
        let topo = Topology::palmetto_slice(nodes, 125e6);
        let routes = RoutingTable::new(&topo);
        group.bench_with_input(
            BenchmarkId::new("progressive_filling", format!("{nodes}n_{flows}f")),
            &flows,
            |b, &nf| {
                b.iter_batched(
                    || {
                        let mut fx = FlowNetwork::new(&topo);
                        for i in 0..nf {
                            let src = NodeId((i % nodes) as u32);
                            let dst = NodeId(((i * 13 + 1) % nodes) as u32);
                            if src != dst {
                                fx.add_flow(src, dst, routes.route(src, dst));
                            }
                        }
                        fx
                    },
                    |mut fx| {
                        fx.ensure_rates();
                        black_box(fx.n_active())
                    },
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fill);
criterion_main!(benches);
