//! Estimator update throughput: how fast `Î_jf` can be recomputed from
//! heartbeat progress reports at per-job scale (hundreds of sources per
//! candidate, tens of candidates per offer).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pnats_core::context::ShuffleSource;
use pnats_core::estimate::IntermediateEstimator;
use pnats_net::NodeId;

fn sources(n: usize) -> Vec<ShuffleSource> {
    (0..n)
        .map(|i| ShuffleSource {
            node: NodeId((i % 60) as u32),
            current_bytes: (i as f64 + 1.0) * 1e5,
            input_read: (i as u64 % 128 + 1) << 20,
            input_total: 128 << 20,
        })
        .collect()
}

fn bench_estimators(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimation");
    for n in [60usize, 300, 900] {
        let srcs = sources(n);
        for est in [
            IntermediateEstimator::ProgressExtrapolated,
            IntermediateEstimator::CurrentSize,
        ] {
            group.bench_with_input(
                BenchmarkId::new(est.label(), n),
                &srcs,
                |b, srcs| {
                    b.iter(|| {
                        let total: f64 = srcs.iter().map(|s| est.estimate(s)).sum();
                        black_box(total)
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_estimators);
criterion_main!(benches);
