//! The cluster control- and data-plane message set.
//!
//! One tag byte selects the message, then fixed-order fields. Decoding is
//! total (see [`crate::wire`]); a proptest in `tests/decode_total.rs`
//! feeds the decoder arbitrary byte strings and asserts it never panics.

use crate::wire::{Reader, WireError, Writer};

/// Handshake magic: `"PNAT"` as a big-endian u32. A peer that opens with
/// anything else is not speaking this protocol at all.
pub const MAGIC: u32 = 0x504E_4154;

/// Protocol version. Bump on any wire-format change — including a change
/// to the partition function (see `pnats_core::partition`), since peers on
/// different partitionings would silently corrupt the shuffle.
///
/// v2: frames carry an FNV-1a payload checksum, heartbeats carry circuit
/// breaker deltas, and `SourceUnreachable` joined the message set.
///
/// v3: tracker crash-recovery — `Reattach`/`ReattachAck` joined the
/// message set and `HeartbeatReply` grew a `reattach` flag (a restarted
/// tracker asks a surviving worker to re-attach instead of wiping it).
pub const PROTOCOL_VERSION: u32 = 3;

/// Live progress of one running map attempt (`d_read` and per-partition
/// `A_jf` — the counters the paper's Î_jf estimator consumes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgressReport {
    /// Map task index.
    pub map: u32,
    /// Attempt tag of the running attempt.
    pub attempt: u32,
    /// Input bytes consumed so far.
    pub d_read: u64,
    /// Intermediate bytes emitted per reduce partition so far.
    pub part_bytes: Vec<u64>,
}

/// A map attempt completed; the worker holds its partitioned output and
/// reports only the per-partition byte sizes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MapDone {
    /// Map task index.
    pub map: u32,
    /// Attempt tag of the completed attempt.
    pub attempt: u32,
    /// Intermediate bytes per reduce partition.
    pub bytes: Vec<u64>,
}

/// A map attempt failed transiently and its slot is free again.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MapFailed {
    /// Map task index.
    pub map: u32,
    /// Attempt tag of the failed attempt.
    pub attempt: u32,
}

/// A reduce attempt completed; final output rides the heartbeat (the
/// driver-held reduce output is durable, exactly as in the engine).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReduceDone {
    /// Reduce task index.
    pub reduce: u32,
    /// Attempt tag of the completed attempt.
    pub attempt: u32,
    /// Final key/value pairs of this partition.
    pub output: Vec<(String, String)>,
    /// Shuffle bytes pulled per source node (for locality accounting).
    pub sources: Vec<(u32, u64)>,
}

/// One task assignment in a heartbeat reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Assignment {
    /// Run a map attempt over `block`.
    Map {
        /// Map task index (== block index).
        map: u32,
        /// Attempt tag the completion must carry.
        attempt: u32,
        /// Whether the seeded fault draw dooms this attempt to fail
        /// transiently (the tracker rolls the dice; workers just obey, so
        /// verdicts match the engine's exactly).
        doomed: bool,
        /// Data-server addresses of replica holders to fetch the block
        /// from when it is not in the local shard (empty ⇒ local).
        sources: Vec<String>,
    },
    /// Run a reduce attempt.
    Reduce {
        /// Reduce task index.
        reduce: u32,
        /// Attempt tag the completion must carry.
        attempt: u32,
        /// Total map count — the attempt must fetch this many partitions.
        n_maps: u32,
    },
}

/// Everything that travels between tracker, workers and peers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Msg {
    /// Connection opener, both directions of any pnats-rpc connection.
    Hello {
        /// Must equal [`MAGIC`].
        magic: u32,
        /// Sender's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Handshake accepted.
    HelloAck {
        /// Responder's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Handshake rejected: version skew. The connection closes after this.
    HelloReject {
        /// Version the responder speaks.
        expected: u32,
        /// Version the peer declared.
        got: u32,
    },
    /// Worker → tracker: join the cluster (or rejoin after a crash).
    Register {
        /// The worker's node id.
        node: u32,
        /// Crash epoch: 0 at first boot, +1 per wipe-and-rejoin.
        epoch: u32,
        /// Address of the worker's data server (peers fetch blocks and
        /// map partitions from it).
        data_addr: String,
    },
    /// Tracker → worker: registration accepted, here is the job and your
    /// DFS shard.
    RegisterAck {
        /// Echoed node id.
        node: u32,
        /// Job spec string (`wordcount`, `grep:<needle>`, `terasort`).
        job: String,
        /// Reduce partition count.
        n_reduces: u32,
        /// [`pnats_core::Partitioner`] wire tag.
        partitioner: u8,
        /// Simulated map compute cost (µs per KiB), for execution pacing.
        cpu_us_per_kib: u64,
        /// This node's block shard: `(block id, block text)`.
        blocks: Vec<(u32, String)>,
    },
    /// Worker → tracker, every `T` ms: status + free slots, implicitly
    /// requesting work.
    Heartbeat {
        /// Sender's node id.
        node: u32,
        /// Sender's crash epoch.
        epoch: u32,
        /// Free map slots right now.
        free_map_slots: u32,
        /// Free reduce slots right now.
        free_reduce_slots: u32,
        /// Live progress of running map attempts.
        progress: Vec<ProgressReport>,
        /// Map attempts completed since the last accepted heartbeat.
        map_done: Vec<MapDone>,
        /// Map attempts failed since the last accepted heartbeat.
        map_failed: Vec<MapFailed>,
        /// Reduce attempts completed since the last accepted heartbeat.
        reduce_done: Vec<ReduceDone>,
        /// Reduce attempts currently running, as `(reduce, attempt)`. With
        /// at-least-once heartbeat delivery a reply carrying assignments can
        /// be lost after the tracker applied it; the tracker compares this
        /// list (and `progress`) against its own book to requeue
        /// assignments the worker never heard about.
        running_reduces: Vec<(u32, u32)>,
        /// RPC retries the worker performed since the last heartbeat.
        rpc_retries: u64,
        /// Per-peer circuit breakers tripped open since the last heartbeat.
        breaker_trips: u64,
        /// Circuit breakers closed again (probe succeeded) since the last
        /// heartbeat.
        breaker_closes: u64,
        /// Map outputs fetched from an alternate source after the primary
        /// failed, since the last heartbeat.
        alt_fetches: u64,
        /// Control-plane frames the worker rejected for a checksum
        /// mismatch since the last heartbeat (each one poisoned a
        /// connection).
        corrupt_frames: u64,
    },
    /// Tracker → worker: the scheduling answer.
    HeartbeatReply {
        /// New work for the worker's free slots.
        assignments: Vec<Assignment>,
        /// Map indexes whose outputs the worker must drop (invalidated by
        /// a crash elsewhere — a reduce re-fetch would be stale).
        invalidate: Vec<u32>,
        /// The heartbeat fell in a loss window: the tracker acted as if it
        /// never arrived, and the worker must re-report its statuses.
        ignored: bool,
        /// The tracker considers this worker dead (expired or in a crash
        /// window). The worker must wipe all state, bump its epoch, and
        /// re-register when the tracker stops saying `dead`.
        dead: bool,
        /// The job is over; the worker should exit its loops.
        shutdown: bool,
        /// The tracker restarted and does not recognize this live worker
        /// yet: the worker must send [`Msg::Reattach`] (keeping all local
        /// state) instead of heartbeating. Unlike `dead`, nothing is
        /// wiped — the tracker wants the worker's attempt book back.
        reattach: bool,
    },
    /// Peer/tracker data plane: fetch an input block.
    FetchBlock {
        /// Block id.
        block: u32,
    },
    /// Reply to [`Msg::FetchBlock`].
    BlockData {
        /// Echoed block id.
        block: u32,
        /// Block text.
        data: String,
    },
    /// Peer data plane: fetch one reduce partition of a completed map.
    FetchPartition {
        /// Map task index.
        map: u32,
        /// Attempt tag the fetcher believes is current.
        attempt: u32,
        /// Reduce partition index.
        reduce: u32,
    },
    /// Reply to [`Msg::FetchPartition`]: the partition's pairs.
    PartitionData {
        /// Intermediate pairs, in map emission order.
        pairs: Vec<(String, String)>,
    },
    /// The addressee does not hold what was asked for (block not in shard,
    /// map output wiped or attempt-stale). The fetcher re-resolves via the
    /// tracker.
    NotHere,
    /// Worker → tracker: where is map `map`'s output?
    WhereIs {
        /// Map task index.
        map: u32,
    },
    /// Reply to [`Msg::WhereIs`]: fetch from this data server.
    MapAt {
        /// Node id of the worker holding the output (for locality
        /// accounting in the fetcher's `ReduceDone` report).
        node: u32,
        /// Data-server address of the worker holding the output.
        addr: String,
        /// Current attempt tag (stale fetches are refused).
        attempt: u32,
    },
    /// Reply to [`Msg::WhereIs`]: the output does not currently exist
    /// (running, invalidated, or rescheduled) — retry later.
    NotReady,
    /// Graceful stop (tracker → worker out-of-band, or test → daemon).
    Shutdown,
    /// Generic acknowledgement.
    Ack,
    /// Worker → tracker: a map-output source is unreachable past the
    /// circuit-breaker budget and no alternate source exists — the tracker
    /// should re-execute the map elsewhere. `attempt` is the attempt tag
    /// the fetcher believed current, so a report that races a re-execution
    /// already underway is recognized as stale and ignored.
    SourceUnreachable {
        /// Map task index whose output cannot be fetched.
        map: u32,
        /// Attempt tag the fetcher was trying to fetch.
        attempt: u32,
    },
    /// Worker → tracker: re-attach to a restarted tracker without wiping
    /// local state. Carries the worker's complete attempt book so the
    /// tracker can reconcile its journal-replayed view against worker
    /// truth — adopting live attempts, invalidating stale ones, and
    /// re-issuing work the worker never heard about.
    Reattach {
        /// The worker's node id.
        node: u32,
        /// The worker's current crash epoch (must match the tracker's
        /// journaled epoch for this node, else the worker is told `dead`).
        epoch: u32,
        /// Address of the worker's data server.
        data_addr: String,
        /// Finished map attempts still held locally, as `(map, attempt)`.
        finished_maps: Vec<(u32, u32)>,
        /// Running map attempts, as `(map, attempt)`.
        running_maps: Vec<(u32, u32)>,
        /// Running reduce attempts, as `(reduce, attempt)`.
        running_reduces: Vec<(u32, u32)>,
    },
    /// Tracker → worker: reply to [`Msg::Reattach`].
    ReattachAck {
        /// Map indexes whose locally held outputs are stale and must be
        /// dropped (superseded by a newer crash epoch).
        invalidate: Vec<u32>,
        /// The tracker does not recognize this node/epoch: wipe all state,
        /// bump the crash epoch, and re-register from scratch.
        dead: bool,
        /// The job is over; the worker should exit its loops.
        shutdown: bool,
    },
}

const TAG_HELLO: u8 = 1;
const TAG_HELLO_ACK: u8 = 2;
const TAG_HELLO_REJECT: u8 = 3;
const TAG_REGISTER: u8 = 4;
const TAG_REGISTER_ACK: u8 = 5;
const TAG_HEARTBEAT: u8 = 6;
const TAG_HEARTBEAT_REPLY: u8 = 7;
const TAG_FETCH_BLOCK: u8 = 8;
const TAG_BLOCK_DATA: u8 = 9;
const TAG_FETCH_PARTITION: u8 = 10;
const TAG_PARTITION_DATA: u8 = 11;
const TAG_NOT_HERE: u8 = 12;
const TAG_WHERE_IS: u8 = 13;
const TAG_MAP_AT: u8 = 14;
const TAG_NOT_READY: u8 = 15;
const TAG_SHUTDOWN: u8 = 16;
const TAG_ACK: u8 = 17;
const TAG_SOURCE_UNREACHABLE: u8 = 18;
const TAG_REATTACH: u8 = 19;
const TAG_REATTACH_ACK: u8 = 20;

fn encode_u32_pairs(w: &mut Writer, xs: &[(u32, u32)]) {
    w.count(xs.len());
    for (a, b) in xs {
        w.u32(*a);
        w.u32(*b);
    }
}

fn decode_u32_pairs(r: &mut Reader<'_>) -> Result<Vec<(u32, u32)>, WireError> {
    let n = r.count(8)?;
    (0..n).map(|_| Ok((r.u32()?, r.u32()?))).collect()
}

const ASSIGN_MAP: u8 = 0;
const ASSIGN_REDUCE: u8 = 1;

fn encode_pairs(w: &mut Writer, pairs: &[(String, String)]) {
    w.count(pairs.len());
    for (k, v) in pairs {
        w.string(k);
        w.string(v);
    }
}

fn decode_pairs(r: &mut Reader<'_>) -> Result<Vec<(String, String)>, WireError> {
    let n = r.count(8)?;
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        pairs.push((r.string()?, r.string()?));
    }
    Ok(pairs)
}

fn encode_u64s(w: &mut Writer, xs: &[u64]) {
    w.count(xs.len());
    for x in xs {
        w.u64(*x);
    }
}

fn decode_u64s(r: &mut Reader<'_>) -> Result<Vec<u64>, WireError> {
    let n = r.count(8)?;
    (0..n).map(|_| r.u64()).collect()
}

impl Assignment {
    fn encode(&self, w: &mut Writer) {
        match self {
            Assignment::Map { map, attempt, doomed, sources } => {
                w.u8(ASSIGN_MAP);
                w.u32(*map);
                w.u32(*attempt);
                w.bool(*doomed);
                w.count(sources.len());
                for s in sources {
                    w.string(s);
                }
            }
            Assignment::Reduce { reduce, attempt, n_maps } => {
                w.u8(ASSIGN_REDUCE);
                w.u32(*reduce);
                w.u32(*attempt);
                w.u32(*n_maps);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            ASSIGN_MAP => {
                let map = r.u32()?;
                let attempt = r.u32()?;
                let doomed = r.bool()?;
                let n = r.count(4)?;
                let mut sources = Vec::with_capacity(n);
                for _ in 0..n {
                    sources.push(r.string()?);
                }
                Ok(Assignment::Map { map, attempt, doomed, sources })
            }
            ASSIGN_REDUCE => Ok(Assignment::Reduce {
                reduce: r.u32()?,
                attempt: r.u32()?,
                n_maps: r.u32()?,
            }),
            t => Err(WireError::UnknownTag(t)),
        }
    }
}

impl Msg {
    /// Encode into a payload (the frame layer adds the length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Msg::Hello { magic, version } => {
                w.u8(TAG_HELLO);
                w.u32(*magic);
                w.u32(*version);
            }
            Msg::HelloAck { version } => {
                w.u8(TAG_HELLO_ACK);
                w.u32(*version);
            }
            Msg::HelloReject { expected, got } => {
                w.u8(TAG_HELLO_REJECT);
                w.u32(*expected);
                w.u32(*got);
            }
            Msg::Register { node, epoch, data_addr } => {
                w.u8(TAG_REGISTER);
                w.u32(*node);
                w.u32(*epoch);
                w.string(data_addr);
            }
            Msg::RegisterAck { node, job, n_reduces, partitioner, cpu_us_per_kib, blocks } => {
                w.u8(TAG_REGISTER_ACK);
                w.u32(*node);
                w.string(job);
                w.u32(*n_reduces);
                w.u8(*partitioner);
                w.u64(*cpu_us_per_kib);
                w.count(blocks.len());
                for (id, data) in blocks {
                    w.u32(*id);
                    w.string(data);
                }
            }
            Msg::Heartbeat {
                node,
                epoch,
                free_map_slots,
                free_reduce_slots,
                progress,
                map_done,
                map_failed,
                reduce_done,
                running_reduces,
                rpc_retries,
                breaker_trips,
                breaker_closes,
                alt_fetches,
                corrupt_frames,
            } => {
                w.u8(TAG_HEARTBEAT);
                w.u32(*node);
                w.u32(*epoch);
                w.u32(*free_map_slots);
                w.u32(*free_reduce_slots);
                w.count(progress.len());
                for p in progress {
                    w.u32(p.map);
                    w.u32(p.attempt);
                    w.u64(p.d_read);
                    encode_u64s(&mut w, &p.part_bytes);
                }
                w.count(map_done.len());
                for m in map_done {
                    w.u32(m.map);
                    w.u32(m.attempt);
                    encode_u64s(&mut w, &m.bytes);
                }
                w.count(map_failed.len());
                for m in map_failed {
                    w.u32(m.map);
                    w.u32(m.attempt);
                }
                w.count(reduce_done.len());
                for rd in reduce_done {
                    w.u32(rd.reduce);
                    w.u32(rd.attempt);
                    encode_pairs(&mut w, &rd.output);
                    w.count(rd.sources.len());
                    for (n, b) in &rd.sources {
                        w.u32(*n);
                        w.u64(*b);
                    }
                }
                w.count(running_reduces.len());
                for (red, a) in running_reduces {
                    w.u32(*red);
                    w.u32(*a);
                }
                w.u64(*rpc_retries);
                w.u64(*breaker_trips);
                w.u64(*breaker_closes);
                w.u64(*alt_fetches);
                w.u64(*corrupt_frames);
            }
            Msg::HeartbeatReply { assignments, invalidate, ignored, dead, shutdown, reattach } => {
                w.u8(TAG_HEARTBEAT_REPLY);
                w.count(assignments.len());
                for a in assignments {
                    a.encode(&mut w);
                }
                w.count(invalidate.len());
                for m in invalidate {
                    w.u32(*m);
                }
                w.bool(*ignored);
                w.bool(*dead);
                w.bool(*shutdown);
                w.bool(*reattach);
            }
            Msg::FetchBlock { block } => {
                w.u8(TAG_FETCH_BLOCK);
                w.u32(*block);
            }
            Msg::BlockData { block, data } => {
                w.u8(TAG_BLOCK_DATA);
                w.u32(*block);
                w.string(data);
            }
            Msg::FetchPartition { map, attempt, reduce } => {
                w.u8(TAG_FETCH_PARTITION);
                w.u32(*map);
                w.u32(*attempt);
                w.u32(*reduce);
            }
            Msg::PartitionData { pairs } => {
                w.u8(TAG_PARTITION_DATA);
                encode_pairs(&mut w, pairs);
            }
            Msg::NotHere => w.u8(TAG_NOT_HERE),
            Msg::WhereIs { map } => {
                w.u8(TAG_WHERE_IS);
                w.u32(*map);
            }
            Msg::MapAt { node, addr, attempt } => {
                w.u8(TAG_MAP_AT);
                w.u32(*node);
                w.string(addr);
                w.u32(*attempt);
            }
            Msg::NotReady => w.u8(TAG_NOT_READY),
            Msg::Shutdown => w.u8(TAG_SHUTDOWN),
            Msg::Ack => w.u8(TAG_ACK),
            Msg::SourceUnreachable { map, attempt } => {
                w.u8(TAG_SOURCE_UNREACHABLE);
                w.u32(*map);
                w.u32(*attempt);
            }
            Msg::Reattach {
                node,
                epoch,
                data_addr,
                finished_maps,
                running_maps,
                running_reduces,
            } => {
                w.u8(TAG_REATTACH);
                w.u32(*node);
                w.u32(*epoch);
                w.string(data_addr);
                encode_u32_pairs(&mut w, finished_maps);
                encode_u32_pairs(&mut w, running_maps);
                encode_u32_pairs(&mut w, running_reduces);
            }
            Msg::ReattachAck { invalidate, dead, shutdown } => {
                w.u8(TAG_REATTACH_ACK);
                w.count(invalidate.len());
                for m in invalidate {
                    w.u32(*m);
                }
                w.bool(*dead);
                w.bool(*shutdown);
            }
        }
        w.into_bytes()
    }

    /// Decode a full payload. Total: every byte string yields `Ok` or a
    /// typed [`WireError`]. Trailing bytes after a valid message are an
    /// error (a frame holds exactly one message).
    pub fn decode(bytes: &[u8]) -> Result<Msg, WireError> {
        let mut r = Reader::new(bytes);
        let msg = Self::decode_inner(&mut r)?;
        r.finish()?;
        Ok(msg)
    }

    fn decode_inner(r: &mut Reader<'_>) -> Result<Msg, WireError> {
        match r.u8()? {
            TAG_HELLO => Ok(Msg::Hello { magic: r.u32()?, version: r.u32()? }),
            TAG_HELLO_ACK => Ok(Msg::HelloAck { version: r.u32()? }),
            TAG_HELLO_REJECT => Ok(Msg::HelloReject { expected: r.u32()?, got: r.u32()? }),
            TAG_REGISTER => Ok(Msg::Register {
                node: r.u32()?,
                epoch: r.u32()?,
                data_addr: r.string()?,
            }),
            TAG_REGISTER_ACK => {
                let node = r.u32()?;
                let job = r.string()?;
                let n_reduces = r.u32()?;
                let partitioner = r.u8()?;
                let cpu_us_per_kib = r.u64()?;
                let n = r.count(8)?;
                let mut blocks = Vec::with_capacity(n);
                for _ in 0..n {
                    blocks.push((r.u32()?, r.string()?));
                }
                Ok(Msg::RegisterAck { node, job, n_reduces, partitioner, cpu_us_per_kib, blocks })
            }
            TAG_HEARTBEAT => {
                let node = r.u32()?;
                let epoch = r.u32()?;
                let free_map_slots = r.u32()?;
                let free_reduce_slots = r.u32()?;
                let n = r.count(20)?;
                let mut progress = Vec::with_capacity(n);
                for _ in 0..n {
                    progress.push(ProgressReport {
                        map: r.u32()?,
                        attempt: r.u32()?,
                        d_read: r.u64()?,
                        part_bytes: decode_u64s(r)?,
                    });
                }
                let n = r.count(12)?;
                let mut map_done = Vec::with_capacity(n);
                for _ in 0..n {
                    map_done.push(MapDone {
                        map: r.u32()?,
                        attempt: r.u32()?,
                        bytes: decode_u64s(r)?,
                    });
                }
                let n = r.count(8)?;
                let mut map_failed = Vec::with_capacity(n);
                for _ in 0..n {
                    map_failed.push(MapFailed { map: r.u32()?, attempt: r.u32()? });
                }
                let n = r.count(16)?;
                let mut reduce_done = Vec::with_capacity(n);
                for _ in 0..n {
                    let reduce = r.u32()?;
                    let attempt = r.u32()?;
                    let output = decode_pairs(r)?;
                    let ns = r.count(12)?;
                    let mut sources = Vec::with_capacity(ns);
                    for _ in 0..ns {
                        sources.push((r.u32()?, r.u64()?));
                    }
                    reduce_done.push(ReduceDone { reduce, attempt, output, sources });
                }
                let n = r.count(8)?;
                let mut running_reduces = Vec::with_capacity(n);
                for _ in 0..n {
                    running_reduces.push((r.u32()?, r.u32()?));
                }
                let rpc_retries = r.u64()?;
                let breaker_trips = r.u64()?;
                let breaker_closes = r.u64()?;
                let alt_fetches = r.u64()?;
                let corrupt_frames = r.u64()?;
                Ok(Msg::Heartbeat {
                    node,
                    epoch,
                    free_map_slots,
                    free_reduce_slots,
                    progress,
                    map_done,
                    map_failed,
                    reduce_done,
                    running_reduces,
                    rpc_retries,
                    breaker_trips,
                    breaker_closes,
                    alt_fetches,
                    corrupt_frames,
                })
            }
            TAG_HEARTBEAT_REPLY => {
                let n = r.count(1)?;
                let mut assignments = Vec::with_capacity(n);
                for _ in 0..n {
                    assignments.push(Assignment::decode(r)?);
                }
                let n = r.count(4)?;
                let mut invalidate = Vec::with_capacity(n);
                for _ in 0..n {
                    invalidate.push(r.u32()?);
                }
                Ok(Msg::HeartbeatReply {
                    assignments,
                    invalidate,
                    ignored: r.bool()?,
                    dead: r.bool()?,
                    shutdown: r.bool()?,
                    reattach: r.bool()?,
                })
            }
            TAG_FETCH_BLOCK => Ok(Msg::FetchBlock { block: r.u32()? }),
            TAG_BLOCK_DATA => Ok(Msg::BlockData { block: r.u32()?, data: r.string()? }),
            TAG_FETCH_PARTITION => Ok(Msg::FetchPartition {
                map: r.u32()?,
                attempt: r.u32()?,
                reduce: r.u32()?,
            }),
            TAG_PARTITION_DATA => Ok(Msg::PartitionData { pairs: decode_pairs(r)? }),
            TAG_NOT_HERE => Ok(Msg::NotHere),
            TAG_WHERE_IS => Ok(Msg::WhereIs { map: r.u32()? }),
            TAG_MAP_AT => Ok(Msg::MapAt { node: r.u32()?, addr: r.string()?, attempt: r.u32()? }),
            TAG_NOT_READY => Ok(Msg::NotReady),
            TAG_SHUTDOWN => Ok(Msg::Shutdown),
            TAG_ACK => Ok(Msg::Ack),
            TAG_SOURCE_UNREACHABLE => {
                Ok(Msg::SourceUnreachable { map: r.u32()?, attempt: r.u32()? })
            }
            TAG_REATTACH => Ok(Msg::Reattach {
                node: r.u32()?,
                epoch: r.u32()?,
                data_addr: r.string()?,
                finished_maps: decode_u32_pairs(r)?,
                running_maps: decode_u32_pairs(r)?,
                running_reduces: decode_u32_pairs(r)?,
            }),
            TAG_REATTACH_ACK => {
                let n = r.count(4)?;
                let mut invalidate = Vec::with_capacity(n);
                for _ in 0..n {
                    invalidate.push(r.u32()?);
                }
                Ok(Msg::ReattachAck { invalidate, dead: r.bool()?, shutdown: r.bool()? })
            }
            t => Err(WireError::UnknownTag(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Msg> {
        vec![
            Msg::Hello { magic: MAGIC, version: PROTOCOL_VERSION },
            Msg::HelloAck { version: 1 },
            Msg::HelloReject { expected: 1, got: 9 },
            Msg::Register { node: 3, epoch: 2, data_addr: "127.0.0.1:9001".into() },
            Msg::RegisterAck {
                node: 3,
                job: "grep:needle".into(),
                n_reduces: 4,
                partitioner: 1,
                cpu_us_per_kib: 30,
                blocks: vec![(0, "line one\n".into()), (7, String::new())],
            },
            Msg::Heartbeat {
                node: 1,
                epoch: 0,
                free_map_slots: 2,
                free_reduce_slots: 1,
                progress: vec![ProgressReport {
                    map: 5,
                    attempt: 1,
                    d_read: 4096,
                    part_bytes: vec![10, 0, 99],
                }],
                map_done: vec![MapDone { map: 4, attempt: 0, bytes: vec![1, 2] }],
                map_failed: vec![MapFailed { map: 9, attempt: 2 }],
                reduce_done: vec![ReduceDone {
                    reduce: 0,
                    attempt: 0,
                    output: vec![("k".into(), "v".into())],
                    sources: vec![(2, 4096)],
                }],
                running_reduces: vec![(2, 0), (3, 1)],
                rpc_retries: 3,
                breaker_trips: 1,
                breaker_closes: 1,
                alt_fetches: 2,
                corrupt_frames: 1,
            },
            Msg::HeartbeatReply {
                assignments: vec![
                    Assignment::Map {
                        map: 1,
                        attempt: 0,
                        doomed: true,
                        sources: vec!["127.0.0.1:9002".into()],
                    },
                    Assignment::Reduce { reduce: 2, attempt: 1, n_maps: 8 },
                ],
                invalidate: vec![1, 4],
                ignored: false,
                dead: true,
                shutdown: false,
                reattach: false,
            },
            Msg::FetchBlock { block: 12 },
            Msg::BlockData { block: 12, data: "text\n".into() },
            Msg::FetchPartition { map: 1, attempt: 0, reduce: 2 },
            Msg::PartitionData { pairs: vec![("a".into(), "1".into())] },
            Msg::NotHere,
            Msg::WhereIs { map: 6 },
            Msg::MapAt { node: 4, addr: "127.0.0.1:9003".into(), attempt: 2 },
            Msg::NotReady,
            Msg::Shutdown,
            Msg::Ack,
            Msg::SourceUnreachable { map: 3, attempt: 1 },
            Msg::Reattach {
                node: 2,
                epoch: 1,
                data_addr: "127.0.0.1:9004".into(),
                finished_maps: vec![(0, 0), (3, 1)],
                running_maps: vec![(5, 2)],
                running_reduces: vec![(1, 0)],
            },
            Msg::ReattachAck { invalidate: vec![3], dead: false, shutdown: false },
        ]
    }

    #[test]
    fn every_message_round_trips() {
        for msg in samples() {
            let bytes = msg.encode();
            let back = Msg::decode(&bytes).unwrap_or_else(|e| panic!("{msg:?}: {e}"));
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        for msg in samples() {
            let bytes = msg.encode();
            for cut in 0..bytes.len() {
                match Msg::decode(&bytes[..cut]) {
                    Err(_) => {}
                    // A prefix of one message can decode as a complete
                    // smaller message only if it consumes every byte —
                    // decode() rejects trailing bytes, so prefixes of the
                    // *same* message must error.
                    Ok(m) => panic!("{msg:?} cut at {cut} decoded as {m:?}"),
                }
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = Msg::Ack.encode();
        bytes.push(0);
        assert_eq!(Msg::decode(&bytes), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn unknown_tag_is_typed() {
        assert_eq!(Msg::decode(&[0xEE]), Err(WireError::UnknownTag(0xEE)));
        assert_eq!(Msg::decode(&[]), Err(WireError::Truncated));
    }

    #[test]
    fn encoding_is_deterministic() {
        for msg in samples() {
            assert_eq!(msg.encode(), msg.encode());
        }
    }
}
