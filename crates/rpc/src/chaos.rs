//! Deterministic wire-level chaos: a seeded fault-injecting TCP proxy.
//!
//! A [`ChaosNet`] sits between RPC peers as a per-link proxy
//! ([`ChaosNet::proxy`]) and damages traffic according to a [`ChaosPlan`]
//! — the wire-level analogue of `pnats_core::faults::FaultPlan`. Faults
//! come in two granularities:
//!
//! * **connection-level** ([`ChaosFault::is_conn_level`]): refuse, black
//!   hole (half-open socket: bytes go in, nothing comes out), one-way
//!   partitions in either direction, and reset-after-N-frames (an abrupt
//!   mid-call teardown). The first matching rule decides a connection's
//!   fate when it is accepted.
//! * **frame-level**: per-frame delay, throttled writes, and seeded
//!   probabilistic corruption / truncation / drop. Every matching rule
//!   applies, each with its own independent draw.
//!
//! Every probabilistic decision is a pure function of
//! `(seed, link, connection index, direction, frame index, rule index)` —
//! the same hash-the-coordinates scheme `FaultPlan::map_attempt_fails`
//! uses — so a plan replays identically from its seed regardless of
//! thread interleaving. Live traffic shapes (how many frames actually
//! flow) are timing-dependent, so the byte-stable artifact for CI diffing
//! is [`ChaosPlan::simulate`]: a deterministic expansion of the plan over
//! a fixed traffic envelope.
//!
//! The proxy understands the frame format just enough to damage it
//! honestly: corruption flips payload bytes under the original header, so
//! the receiver's checksum (see [`crate::frame`]) catches it; truncation
//! forwards a partial payload then closes, so the receiver sees a short
//! read, not a forged short frame.

use crate::wire::MAX_FRAME;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// One way a link can misbehave.
#[derive(Clone, Debug, PartialEq)]
pub enum ChaosFault {
    /// Accept then immediately close — the service is not serving.
    Refuse,
    /// Accept and swallow everything, answer nothing: a half-open socket.
    /// The peer's read deadline is the only way out.
    BlackHole,
    /// One-way partition: client→upstream bytes vanish, replies flow.
    PartitionToUpstream,
    /// One-way partition: requests arrive and are processed, replies
    /// vanish — the classic "it heard me but I can't hear it".
    PartitionFromUpstream,
    /// Forward this many client→upstream frames, then tear both streams
    /// down abruptly (an approximated RST mid-call).
    ResetAfterFrames(u64),
    /// Hold every frame this long before forwarding.
    Delay(Duration),
    /// Dribble each frame out in `chunk_bytes` pieces with `pause`
    /// between them — a slow link without clock-dependent decisions.
    Throttle {
        /// Bytes written per chunk.
        chunk_bytes: usize,
        /// Pause between chunks.
        pause: Duration,
    },
    /// Flip payload bytes of a frame with probability `p` (header kept,
    /// so the receiver's checksum catches it).
    CorruptFrames {
        /// Per-frame corruption probability.
        p: f64,
    },
    /// With probability `p`, forward only half the payload then close.
    TruncateFrames {
        /// Per-frame truncation probability.
        p: f64,
    },
    /// With probability `p`, swallow a frame whole (stream stays up).
    DropFrames {
        /// Per-frame drop probability.
        p: f64,
    },
}

impl ChaosFault {
    /// Connection-granularity faults decide a connection's fate once, at
    /// accept time; the rest apply per frame.
    pub fn is_conn_level(&self) -> bool {
        matches!(
            self,
            ChaosFault::Refuse
                | ChaosFault::BlackHole
                | ChaosFault::PartitionToUpstream
                | ChaosFault::PartitionFromUpstream
                | ChaosFault::ResetAfterFrames(_)
        )
    }
}

/// One scheduled fault: which link, which connections, what happens.
#[derive(Clone, Debug)]
pub struct LinkRule {
    /// Link name the rule applies to; `None` matches every link.
    pub link: Option<String>,
    /// First per-link connection index (0-based) the rule covers.
    pub conns_from: u64,
    /// One past the last covered connection index; `None` = unbounded.
    pub conns_until: Option<u64>,
    /// The fault to inject.
    pub fault: ChaosFault,
}

impl LinkRule {
    /// A rule covering every connection of every link.
    pub fn always(fault: ChaosFault) -> Self {
        Self { link: None, conns_from: 0, conns_until: None, fault }
    }

    /// A rule covering every connection of one named link.
    pub fn on(link: impl Into<String>, fault: ChaosFault) -> Self {
        Self { link: Some(link.into()), conns_from: 0, conns_until: None, fault }
    }

    /// Restrict the rule to connections `[from, until)` of its link.
    pub fn conns(mut self, from: u64, until: Option<u64>) -> Self {
        self.conns_from = from;
        self.conns_until = until;
        self
    }

    fn matches(&self, link: &str, conn: u64) -> bool {
        self.link.as_deref().is_none_or(|l| l == link)
            && conn >= self.conns_from
            && self.conns_until.is_none_or(|u| conn < u)
    }
}

/// A seeded schedule of wire faults — `FaultPlan`'s wire-level sibling.
#[derive(Clone, Debug, Default)]
pub struct ChaosPlan {
    /// Seed for every probabilistic draw.
    pub seed: u64,
    /// The fault schedule. Connection-level: first match wins.
    /// Frame-level: all matches apply.
    pub rules: Vec<LinkRule>,
}

/// Pure splitmix64 finalizer step (not the streaming variant in
/// `client.rs` — chaos draws hash fixed coordinates, they do not walk a
/// sequence).
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ChaosPlan {
    /// The empty plan: every proxy relays transparently.
    pub fn none() -> Self {
        Self::default()
    }

    /// An empty plan carrying `seed`, ready for [`with_rule`](Self::with_rule).
    pub fn new(seed: u64) -> Self {
        Self { seed, rules: Vec::new() }
    }

    /// Append one rule (builder-style).
    pub fn with_rule(mut self, rule: LinkRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// True when the plan injects nothing.
    pub fn is_none(&self) -> bool {
        self.rules.is_empty()
    }

    /// The connection-level fault governing `(link, conn)`, if any.
    /// First matching rule wins.
    pub fn conn_fault(&self, link: &str, conn: u64) -> Option<&ChaosFault> {
        self.rules
            .iter()
            .find(|r| r.fault.is_conn_level() && r.matches(link, conn))
            .map(|r| &r.fault)
    }

    /// The frame-level rules applying to `(link, conn)`, with their rule
    /// indices (the index salts each rule's independent draw).
    pub fn frame_rules(&self, link: &str, conn: u64) -> Vec<(usize, &ChaosFault)> {
        self.rules
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.fault.is_conn_level() && r.matches(link, conn))
            .map(|(i, r)| (i, &r.fault))
            .collect()
    }

    /// Deterministic `[0, 1)` draw for one frame under one rule — a pure
    /// function of the coordinates, independent of evaluation order.
    pub fn draw(&self, link: &str, conn: u64, dir: u8, frame: u64, rule: usize) -> f64 {
        let mut h = mix(self.seed ^ 0x43_48_41_4F_53); // "CHAOS"
        for &b in link.as_bytes() {
            h = mix(h ^ u64::from(b));
        }
        h = mix(h ^ conn);
        h = mix(h ^ (u64::from(dir) << 32) ^ (rule as u64));
        h = mix(h ^ frame);
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Deterministic expansion of the plan over a fixed traffic envelope:
    /// for each link in `links`, `conns_per_link` connections of
    /// `frames_per_conn` frames per direction, emit the chaos events the
    /// plan would fire, as JSONL. Same plan + same envelope ⇒ identical
    /// bytes — this is the replayable artifact `chaos_soak` writes and CI
    /// diffs (live traffic shapes are timing-dependent; the plan is not).
    pub fn simulate(&self, links: &[&str], conns_per_link: u64, frames_per_conn: u64) -> String {
        let mut out = String::new();
        for link in links {
            for conn in 0..conns_per_link {
                if let Some(fault) = self.conn_fault(link, conn) {
                    let action = match fault {
                        ChaosFault::Refuse => ChaosAction::Refused,
                        ChaosFault::BlackHole => ChaosAction::BlackHoled,
                        ChaosFault::PartitionToUpstream => ChaosAction::PartitionedToUpstream,
                        ChaosFault::PartitionFromUpstream => ChaosAction::PartitionedFromUpstream,
                        ChaosFault::ResetAfterFrames(_) => ChaosAction::Reset,
                        _ => unreachable!("conn_fault returns conn-level faults only"),
                    };
                    out.push_str(
                        &ChaosEvent { link: link.to_string(), conn, dir: 0, frame: 0, action }
                            .to_json(),
                    );
                    out.push('\n');
                    continue; // the connection never carries frames
                }
                for dir in 0..2u8 {
                    for frame in 0..frames_per_conn {
                        for (rule, fault) in self.frame_rules(link, conn) {
                            let action = match fault {
                                ChaosFault::Delay(_) => Some(ChaosAction::Delayed),
                                ChaosFault::Throttle { .. } => Some(ChaosAction::Throttled),
                                ChaosFault::CorruptFrames { p } => {
                                    (self.draw(link, conn, dir, frame, rule) < *p)
                                        .then_some(ChaosAction::Corrupted)
                                }
                                ChaosFault::TruncateFrames { p } => {
                                    (self.draw(link, conn, dir, frame, rule) < *p)
                                        .then_some(ChaosAction::Truncated)
                                }
                                ChaosFault::DropFrames { p } => {
                                    (self.draw(link, conn, dir, frame, rule) < *p)
                                        .then_some(ChaosAction::Dropped)
                                }
                                _ => None,
                            };
                            if let Some(action) = action {
                                out.push_str(
                                    &ChaosEvent {
                                        link: link.to_string(),
                                        conn,
                                        dir,
                                        frame,
                                        action,
                                    }
                                    .to_json(),
                                );
                                out.push('\n');
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// What the chaos layer did to one connection or frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosAction {
    /// Connection accepted then immediately closed.
    Refused,
    /// Connection black-holed (swallowed, never answered).
    BlackHoled,
    /// Client→upstream direction severed.
    PartitionedToUpstream,
    /// Upstream→client direction severed.
    PartitionedFromUpstream,
    /// Both streams torn down mid-call.
    Reset,
    /// Frame held before forwarding.
    Delayed,
    /// Frame dribbled out in chunks.
    Throttled,
    /// Frame payload bytes flipped.
    Corrupted,
    /// Frame cut short then the stream closed.
    Truncated,
    /// Frame swallowed whole.
    Dropped,
}

impl ChaosAction {
    /// Stable snake_case label (JSONL field value).
    pub fn label(&self) -> &'static str {
        match self {
            ChaosAction::Refused => "refused",
            ChaosAction::BlackHoled => "black_holed",
            ChaosAction::PartitionedToUpstream => "partitioned_to_upstream",
            ChaosAction::PartitionedFromUpstream => "partitioned_from_upstream",
            ChaosAction::Reset => "reset",
            ChaosAction::Delayed => "delayed",
            ChaosAction::Throttled => "throttled",
            ChaosAction::Corrupted => "corrupted",
            ChaosAction::Truncated => "truncated",
            ChaosAction::Dropped => "dropped",
        }
    }

    /// Did this action make the link unusable (vs merely slow)? Maps to
    /// the `link_partitioned` fault record downstream; `Corrupted` maps to
    /// `frame_corrupted`; delay/throttle are annotations only.
    pub fn severs_link(&self) -> bool {
        matches!(
            self,
            ChaosAction::Refused
                | ChaosAction::BlackHoled
                | ChaosAction::PartitionedToUpstream
                | ChaosAction::PartitionedFromUpstream
                | ChaosAction::Reset
                | ChaosAction::Truncated
                | ChaosAction::Dropped
        )
    }
}

/// One injected fault, with enough coordinates to replay it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosEvent {
    /// Link name.
    pub link: String,
    /// Per-link connection index.
    pub conn: u64,
    /// Direction: 0 = client→upstream, 1 = upstream→client.
    pub dir: u8,
    /// Frame index within the connection's direction (0 for
    /// connection-level events).
    pub frame: u64,
    /// What happened.
    pub action: ChaosAction,
}

impl ChaosEvent {
    /// Deterministic one-line JSON (fixed key order, no whitespace).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"link\":\"{}\",\"conn\":{},\"dir\":{},\"frame\":{},\"action\":\"{}\"}}",
            self.link,
            self.conn,
            self.dir,
            self.frame,
            self.action.label()
        )
    }
}

/// The chaos fabric: one plan, shared connection counters and an event
/// log, handing out per-link proxies.
pub struct ChaosNet {
    plan: ChaosPlan,
    conns: Mutex<HashMap<String, u64>>,
    events: Mutex<Vec<ChaosEvent>>,
}

impl ChaosNet {
    /// A fabric executing `plan`.
    pub fn new(plan: ChaosPlan) -> Arc<Self> {
        Arc::new(Self { plan, conns: Mutex::new(HashMap::new()), events: Mutex::new(Vec::new()) })
    }

    /// The plan this fabric executes.
    pub fn plan(&self) -> &ChaosPlan {
        &self.plan
    }

    fn next_conn(&self, link: &str) -> u64 {
        let mut conns = self.conns.lock().unwrap();
        let c = conns.entry(link.to_string()).or_insert(0);
        let idx = *c;
        *c += 1;
        idx
    }

    fn log(&self, ev: ChaosEvent) {
        self.events.lock().unwrap().push(ev);
    }

    /// Snapshot of every event injected so far. Ordering between
    /// connections is timing-dependent; use [`ChaosPlan::simulate`] for a
    /// byte-stable artifact.
    pub fn events(&self) -> Vec<ChaosEvent> {
        self.events.lock().unwrap().clone()
    }

    /// Drain the event log (snapshot + clear).
    pub fn take_events(&self) -> Vec<ChaosEvent> {
        std::mem::take(&mut *self.events.lock().unwrap())
    }

    /// Start a proxy for `link`: connections to the returned proxy's
    /// [`addr`](ChaosProxy::addr) are relayed to `upstream` through the
    /// plan's faults. An empty plan relays transparently.
    pub fn proxy(self: &Arc<Self>, link: &str, upstream: &str) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?.to_string();
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let net = self.clone();
        let link = link.to_string();
        let upstream = upstream.to_string();
        let accept = std::thread::spawn(move || {
            let mut conns: Vec<JoinHandle<()>> = Vec::new();
            while !stop2.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let conn = net.next_conn(&link);
                        let net = net.clone();
                        let link = link.clone();
                        let upstream = upstream.clone();
                        let stop = stop2.clone();
                        conns.push(std::thread::spawn(move || {
                            handle_conn(stream, &upstream, &net, &link, conn, &stop);
                        }));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
                conns.retain(|c| !c.is_finished());
            }
            for c in conns {
                let _ = c.join();
            }
        });
        Ok(ChaosProxy { addr, stop, accept: Some(accept) })
    }
}

/// One running per-link proxy. Dropping it (or [`stop`](Self::stop)) tears
/// the accept loop and every relay down.
pub struct ChaosProxy {
    addr: String,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// The proxy's bound address — hand this out instead of the upstream's.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Stop accepting and join every relay thread.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Swallow everything `from` sends until EOF or stop — the receiving half
/// of a black hole or one-way partition.
fn discard(mut from: TcpStream, stop: &AtomicBool) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(50)));
    let mut buf = [0u8; 4096];
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match from.read(&mut buf) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {}
            Err(_) => return,
        }
    }
}

/// Fill `buf` from `from`, polling `stop` across read deadlines. `false`
/// on EOF, hard error, or stop.
fn read_full(from: &mut TcpStream, buf: &mut [u8], stop: &AtomicBool) -> bool {
    let mut filled = 0;
    while filled < buf.len() {
        match from.read(&mut buf[filled..]) {
            Ok(0) => return false,
            Ok(n) => filled += n,
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                if stop.load(Ordering::SeqCst) {
                    return false;
                }
            }
            Err(_) => return false,
        }
    }
    true
}

struct RelayCtx {
    net: Arc<ChaosNet>,
    link: String,
    conn: u64,
    dir: u8,
    /// `Some((budget, shared fwd-frame counter))` under `ResetAfterFrames`.
    reset: Option<(u64, Arc<AtomicU64>)>,
}

/// Relay frames `from` → `to`, injecting the plan's frame faults. Closing
/// either stream (ours or the peer relay's) ends both directions.
fn relay_frames(mut from: TcpStream, mut to: TcpStream, ctx: RelayCtx, stop: &AtomicBool) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(50)));
    let plan = ctx.net.plan.clone();
    let rules = plan.frame_rules(&ctx.link, ctx.conn);
    let mut frame: u64 = 0;
    loop {
        let mut header = [0u8; 8];
        if !read_full(&mut from, &mut header, stop) {
            break;
        }
        let len = u32::from_be_bytes(header[..4].try_into().unwrap()) as usize;
        if len > MAX_FRAME {
            break; // not our protocol; refuse to relay it
        }
        let mut payload = vec![0u8; len];
        if !read_full(&mut from, &mut payload, stop) {
            break;
        }
        let idx = frame;
        frame += 1;

        let mut drop_frame = false;
        let mut truncate = false;
        let mut corrupt = false;
        let mut throttle: Option<(usize, Duration)> = None;
        for (rule, fault) in &rules {
            match fault {
                ChaosFault::Delay(d) => {
                    ctx.log(idx, ChaosAction::Delayed);
                    std::thread::sleep(*d);
                }
                ChaosFault::Throttle { chunk_bytes, pause } => {
                    ctx.log(idx, ChaosAction::Throttled);
                    throttle = Some(((*chunk_bytes).max(1), *pause));
                }
                ChaosFault::CorruptFrames { p }
                    if plan.draw(&ctx.link, ctx.conn, ctx.dir, idx, *rule) < *p =>
                {
                    corrupt = true;
                }
                ChaosFault::TruncateFrames { p }
                    if plan.draw(&ctx.link, ctx.conn, ctx.dir, idx, *rule) < *p =>
                {
                    truncate = true;
                }
                ChaosFault::DropFrames { p }
                    if plan.draw(&ctx.link, ctx.conn, ctx.dir, idx, *rule) < *p =>
                {
                    drop_frame = true;
                }
                _ => {}
            }
        }

        if drop_frame {
            ctx.log(idx, ChaosAction::Dropped);
            continue; // stream stays framed: whole frames vanish cleanly
        }
        if truncate {
            ctx.log(idx, ChaosAction::Truncated);
            let cut = len / 2;
            let _ = to.write_all(&header).and_then(|()| to.write_all(&payload[..cut]));
            break; // a spliced stream cannot be trusted; cut it
        }
        if corrupt {
            ctx.log(idx, ChaosAction::Corrupted);
            if payload.is_empty() {
                header[4] ^= 0xFF; // no payload to damage: damage the checksum
            } else {
                let pos = (plan.draw(&ctx.link, ctx.conn, ctx.dir, idx, usize::MAX) * len as f64)
                    as usize;
                payload[pos.min(len - 1)] ^= 0xFF;
            }
        }
        let ok = match throttle {
            None => to.write_all(&header).and_then(|()| to.write_all(&payload)).is_ok(),
            Some((chunk, pause)) => {
                let mut all = header.to_vec();
                all.extend_from_slice(&payload);
                let mut ok = true;
                for piece in all.chunks(chunk) {
                    if to.write_all(piece).is_err() {
                        ok = false;
                        break;
                    }
                    let _ = to.flush();
                    std::thread::sleep(pause);
                }
                ok
            }
        };
        if !ok {
            break;
        }
        if let Some((budget, counter)) = &ctx.reset {
            if ctx.dir == 0 && counter.fetch_add(1, Ordering::SeqCst) + 1 >= *budget {
                ctx.log(idx, ChaosAction::Reset);
                break; // the shutdown below is the RST
            }
        }
    }
    // Either direction ending poisons the pair: kill both streams so the
    // sibling relay unblocks instead of half-opening.
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

impl RelayCtx {
    fn log(&self, frame: u64, action: ChaosAction) {
        self.net.log(ChaosEvent {
            link: self.link.clone(),
            conn: self.conn,
            dir: self.dir,
            frame,
            action,
        });
    }
}

fn handle_conn(
    client: TcpStream,
    upstream: &str,
    net: &Arc<ChaosNet>,
    link: &str,
    conn: u64,
    stop: &AtomicBool,
) {
    let fault = net.plan.conn_fault(link, conn).cloned();
    let log_conn = |action: ChaosAction| {
        net.log(ChaosEvent { link: link.to_string(), conn, dir: 0, frame: 0, action });
    };
    match fault {
        Some(ChaosFault::Refuse) => {
            log_conn(ChaosAction::Refused);
            let _ = client.shutdown(Shutdown::Both);
            return;
        }
        Some(ChaosFault::BlackHole) => {
            log_conn(ChaosAction::BlackHoled);
            discard(client, stop); // never dialed upstream at all
            return;
        }
        _ => {}
    }
    let Ok(up) = TcpStream::connect(upstream) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    let _ = client.set_nodelay(true);
    let _ = up.set_nodelay(true);
    let (Ok(client2), Ok(up2)) = (client.try_clone(), up.try_clone()) else {
        return;
    };
    let ctx = |dir: u8, reset: Option<(u64, Arc<AtomicU64>)>| RelayCtx {
        net: net.clone(),
        link: link.to_string(),
        conn,
        dir,
        reset,
    };
    match fault {
        Some(ChaosFault::PartitionToUpstream) => {
            log_conn(ChaosAction::PartitionedToUpstream);
            // Client→upstream vanishes; upstream→client still relays.
            std::thread::scope(|s| {
                s.spawn(|| discard(client2, stop));
                relay_frames(up, client, ctx(1, None), stop);
            });
        }
        Some(ChaosFault::PartitionFromUpstream) => {
            log_conn(ChaosAction::PartitionedFromUpstream);
            std::thread::scope(|s| {
                s.spawn(|| discard(up2, stop));
                relay_frames(client, up, ctx(0, None), stop);
            });
        }
        Some(ChaosFault::ResetAfterFrames(k)) => {
            let counter = Arc::new(AtomicU64::new(0));
            let fwd = ctx(0, Some((k, counter.clone())));
            let rev = ctx(1, Some((k, counter)));
            std::thread::scope(|s| {
                s.spawn(|| relay_frames(up2, client2, rev, stop));
                relay_frames(client, up, fwd, stop);
            });
        }
        _ => {
            std::thread::scope(|s| {
                s.spawn(|| relay_frames(up2, client2, ctx(1, None), stop));
                relay_frames(client, up, ctx(0, None), stop);
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{RetryPolicy, RpcClient, RpcError};
    use crate::frame::FrameError;
    use crate::msg::Msg;
    use crate::server::RpcServer;

    fn echo_server() -> RpcServer {
        RpcServer::bind("127.0.0.1:0", Arc::new(|msg| msg), Duration::from_millis(20))
            .expect("bind")
    }

    fn fast_policy(seed: u64) -> RetryPolicy {
        RetryPolicy {
            max_attempts: 2,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
            seed,
        }
    }

    #[test]
    fn draws_are_deterministic_and_in_range() {
        let plan = ChaosPlan::new(7);
        let other = ChaosPlan::new(8);
        let mut distinct = false;
        for frame in 0..64 {
            let d = plan.draw("a", 0, 0, frame, 0);
            assert!((0.0..1.0).contains(&d));
            assert_eq!(d, plan.draw("a", 0, 0, frame, 0), "pure function of coordinates");
            if d != other.draw("a", 0, 0, frame, 0) {
                distinct = true;
            }
        }
        assert!(distinct, "different seeds draw differently");
    }

    #[test]
    fn rule_windows_select_connections() {
        let plan = ChaosPlan::new(1)
            .with_rule(LinkRule::on("data:w0", ChaosFault::BlackHole).conns(2, Some(4)));
        assert!(plan.conn_fault("data:w0", 1).is_none());
        assert!(plan.conn_fault("data:w0", 2).is_some());
        assert!(plan.conn_fault("data:w0", 3).is_some());
        assert!(plan.conn_fault("data:w0", 4).is_none());
        assert!(plan.conn_fault("ctl:w0", 2).is_none(), "other links untouched");
    }

    #[test]
    fn simulate_is_byte_identical_and_seed_sensitive() {
        let mk = |seed| {
            ChaosPlan::new(seed)
                .with_rule(LinkRule::always(ChaosFault::CorruptFrames { p: 0.3 }))
                .with_rule(LinkRule::on("data:w1", ChaosFault::DropFrames { p: 0.2 }))
        };
        let a = mk(42).simulate(&["data:w0", "data:w1"], 3, 16);
        let b = mk(42).simulate(&["data:w0", "data:w1"], 3, 16);
        assert_eq!(a, b, "same seed, same artifact");
        assert!(!a.is_empty());
        assert_ne!(a, mk(43).simulate(&["data:w0", "data:w1"], 3, 16));
        for line in a.lines() {
            assert!(line.starts_with("{\"link\":"), "jsonl shape: {line}");
        }
    }

    #[test]
    fn transparent_proxy_relays_calls() {
        let server = echo_server();
        let net = ChaosNet::new(ChaosPlan::none());
        let proxy = net.proxy("ctl", server.addr()).expect("proxy");
        let mut client =
            RpcClient::connect(proxy.addr(), RetryPolicy::default(), Duration::from_secs(2))
                .expect("connect through proxy");
        for map in 0..4 {
            assert_eq!(client.call(&Msg::WhereIs { map }).expect("call"), Msg::WhereIs { map });
        }
        assert!(net.events().is_empty(), "empty plan injects nothing");
    }

    #[test]
    fn corruption_poisons_connections_not_processes() {
        let server = echo_server();
        let net = ChaosNet::new(
            ChaosPlan::new(3).with_rule(LinkRule::always(ChaosFault::CorruptFrames { p: 1.0 })),
        );
        let proxy = net.proxy("ctl", server.addr()).expect("proxy");
        // Every frame is corrupted, so every call (and handshake reply)
        // fails its checksum; the client exhausts its budget with a typed
        // error instead of decoding garbage.
        let res = RpcClient::connect(proxy.addr(), fast_policy(5), Duration::from_millis(200))
            .and_then(|mut c| c.call(&Msg::Ack));
        assert!(res.is_err(), "all-corrupted link cannot carry a call");
        assert!(net.events().iter().any(|e| e.action == ChaosAction::Corrupted));
        // The server survived the garbage: a clean direct connection works.
        let mut direct =
            RpcClient::connect(server.addr(), RetryPolicy::default(), Duration::from_secs(2))
                .expect("server still alive");
        assert_eq!(direct.call(&Msg::Ack).expect("clean call"), Msg::Ack);
    }

    #[test]
    fn black_hole_times_out_instead_of_hanging() {
        let server = echo_server();
        let net =
            ChaosNet::new(ChaosPlan::new(9).with_rule(LinkRule::always(ChaosFault::BlackHole)));
        let proxy = net.proxy("data", server.addr()).expect("proxy");
        let err = RpcClient::connect(proxy.addr(), fast_policy(1), Duration::from_millis(100))
            .err()
            .expect("handshake swallowed by the black hole");
        assert!(matches!(err, RpcError::Frame(FrameError::Io(_))), "{err}");
        assert!(net.events().iter().any(|e| e.action == ChaosAction::BlackHoled));
    }

    #[test]
    fn one_way_partition_from_upstream_starves_replies() {
        let server = echo_server();
        let net = ChaosNet::new(
            ChaosPlan::new(2).with_rule(LinkRule::always(ChaosFault::PartitionFromUpstream)),
        );
        let proxy = net.proxy("data", server.addr()).expect("proxy");
        // Requests reach the server; replies vanish. The handshake's
        // HelloAck is a reply, so connect itself starves.
        let err = RpcClient::connect(proxy.addr(), fast_policy(2), Duration::from_millis(100))
            .err()
            .expect("replies are severed");
        assert!(matches!(err, RpcError::Frame(FrameError::Io(_))), "{err}");
        assert!(
            net.events().iter().any(|e| e.action == ChaosAction::PartitionedFromUpstream)
        );
    }

    #[test]
    fn reset_mid_call_is_retried_on_a_fresh_connection() {
        let server = echo_server();
        // First connection dies after 2 forwarded frames (handshake + one
        // call); later connections are untouched, so the retry succeeds.
        let net = ChaosNet::new(ChaosPlan::new(4).with_rule(
            LinkRule::on("ctl", ChaosFault::ResetAfterFrames(2)).conns(0, Some(1)),
        ));
        let proxy = net.proxy("ctl", server.addr()).expect("proxy");
        let mut client =
            RpcClient::connect(proxy.addr(), RetryPolicy::default(), Duration::from_millis(300))
                .expect("handshake fits the frame budget");
        assert_eq!(client.call(&Msg::Ack).expect("retried past the reset"), Msg::Ack);
        assert!(client.retry_counter().load(Ordering::Relaxed) >= 1);
        assert!(net.events().iter().any(|e| e.action == ChaosAction::Reset));
    }

    #[test]
    fn dropped_frames_are_absorbed_by_retry() {
        let server = echo_server();
        // Drop the first request frame of connection 0 only (dir 0, the
        // handshake Hello): the client's reconnect lands on conn 1, clean.
        let net = ChaosNet::new(ChaosPlan::new(6).with_rule(
            LinkRule::on("ctl", ChaosFault::DropFrames { p: 1.0 }).conns(0, Some(1)),
        ));
        let proxy = net.proxy("ctl", server.addr()).expect("proxy");
        let mut client = RpcClient::connect(
            proxy.addr(),
            RetryPolicy { max_attempts: 3, ..fast_policy(8) },
            Duration::from_millis(100),
        )
        .expect("second connection is clean");
        assert_eq!(client.call(&Msg::Ack).expect("call"), Msg::Ack);
        assert!(net.events().iter().any(|e| e.action == ChaosAction::Dropped));
    }
}
