//! Primitive binary encode/decode.
//!
//! All integers are big-endian. Strings are a `u32` byte length followed by
//! UTF-8 bytes; vectors are a `u32` element count followed by elements.
//! Decoding is *total*: any byte string produces either a value or a typed
//! [`WireError`] — never a panic, never an allocation proportional to a
//! length prefix that the remaining input cannot back (a declared length is
//! validated against the bytes actually present before any reservation).

use std::fmt;

/// Frames larger than this are rejected on both send and receive: a
/// corrupt or malicious length prefix must not make the peer allocate
/// gigabytes. 64 MiB comfortably holds the largest legitimate message
/// (a worker's block shard at registration).
pub const MAX_FRAME: usize = 64 << 20;

/// A decode (or frame) error. Every malformed input maps to one of these.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value it declared.
    Truncated,
    /// A frame length prefix exceeded [`MAX_FRAME`].
    OversizeFrame(u64),
    /// An unknown message (or enum) tag byte.
    UnknownTag(u8),
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// A boolean byte was neither 0 nor 1.
    BadBool(u8),
    /// Bytes remained after the message was fully decoded.
    TrailingBytes(usize),
    /// A frame's payload checksum did not match its header — the bytes
    /// were damaged in flight (or by a chaos layer). The connection that
    /// produced it can no longer be trusted; the process can.
    ChecksumMismatch {
        /// Checksum declared in the frame header.
        declared: u32,
        /// Checksum computed over the received payload.
        computed: u32,
    },
    /// The peer's handshake magic was wrong (not a pnats-rpc peer).
    BadMagic(u32),
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// Version this side speaks.
        ours: u32,
        /// Version the peer declared.
        theirs: u32,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "input truncated"),
            WireError::OversizeFrame(n) => {
                write!(f, "frame of {n} bytes exceeds max {MAX_FRAME}")
            }
            WireError::UnknownTag(t) => write!(f, "unknown tag {t:#04x}"),
            WireError::BadUtf8 => write!(f, "invalid utf-8 in string field"),
            WireError::BadBool(b) => write!(f, "invalid bool byte {b:#04x}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            WireError::ChecksumMismatch { declared, computed } => {
                write!(f, "frame checksum mismatch: declared {declared:#010x}, computed {computed:#010x}")
            }
            WireError::BadMagic(m) => write!(f, "bad handshake magic {m:#010x}"),
            WireError::VersionMismatch { ours, theirs } => {
                write!(f, "protocol version mismatch: ours {ours}, theirs {theirs}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// FNV-1a over `bytes`, 32-bit — the frame payload checksum. Not
/// cryptographic; it exists to catch bytes damaged in flight (bit flips,
/// truncation splices, chaos-layer corruption) before they decode into a
/// *valid but wrong* message.
pub fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Append-only encoder.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a big-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append a `u32` element count (callers then append each element).
    pub fn count(&mut self, n: usize) {
        self.u32(n as u32);
    }
}

/// Cursor-based decoder over a byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Error unless the input was consumed exactly.
    pub fn finish(&self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(WireError::TrailingBytes(n)),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a big-endian u32.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a big-endian u64.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a bool byte; anything but 0/1 is an error.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::BadBool(b)),
        }
    }

    /// Read a length-prefixed UTF-8 string. The declared length is checked
    /// against the remaining input before anything is copied.
    pub fn string(&mut self) -> Result<String, WireError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    /// Read a `u32` element count, sanity-bounded by the remaining input:
    /// every element occupies at least `min_elem_bytes` on the wire, so a
    /// count the input cannot back fails *before* any allocation.
    pub fn count(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(WireError::Truncated);
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.bool(true);
        w.bool(false);
        w.string("héllo");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.string().unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        w.string("hello");
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert_eq!(r.string(), Err(WireError::Truncated), "cut at {cut}");
        }
    }

    #[test]
    fn oversize_count_fails_before_allocating() {
        // A count of u32::MAX with 4-byte elements over a 4-byte input
        // must fail without reserving anything.
        let mut w = Writer::new();
        w.u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.count(4), Err(WireError::Truncated));
    }

    #[test]
    fn bad_utf8_and_bad_bool_are_typed() {
        let bytes = [0, 0, 0, 2, 0xFF, 0xFE];
        assert_eq!(Reader::new(&bytes).string(), Err(WireError::BadUtf8));
        assert_eq!(Reader::new(&[9]).bool(), Err(WireError::BadBool(9)));
    }

    #[test]
    fn trailing_bytes_detected() {
        let r = Reader::new(&[1, 2, 3]);
        assert_eq!(r.finish(), Err(WireError::TrailingBytes(3)));
    }
}
