//! The RPC client: one persistent connection, versioned handshake,
//! deadline-bounded calls, bounded reconnect with seeded backoff + jitter.

use crate::frame::{read_frame, write_frame, FrameError};
use crate::msg::{Msg, MAGIC, PROTOCOL_VERSION};
use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Why a call (or connect) ultimately failed.
#[derive(Debug)]
pub enum RpcError {
    /// Transport or framing failure after the retry budget was exhausted.
    Frame(FrameError),
    /// The peer rejected the handshake (version skew) — not retried, a
    /// mismatched peer stays mismatched.
    HandshakeRejected {
        /// Version the peer speaks.
        expected: u32,
        /// Version we declared.
        got: u32,
    },
    /// The peer answered the handshake with something other than
    /// `HelloAck`/`HelloReject`.
    BadHandshake,
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::Frame(e) => write!(f, "{e}"),
            RpcError::HandshakeRejected { expected, got } => {
                write!(f, "handshake rejected: peer speaks v{expected}, we sent v{got}")
            }
            RpcError::BadHandshake => write!(f, "peer broke the handshake protocol"),
        }
    }
}

impl std::error::Error for RpcError {}

impl From<FrameError> for RpcError {
    fn from(e: FrameError) -> Self {
        RpcError::Frame(e)
    }
}

/// Bounded exponential backoff with deterministic (seeded) jitter.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts per call (1 = no retries).
    pub max_attempts: u32,
    /// Delay before the first retry; doubles per retry.
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
    /// Jitter seed — same seed, same jitter sequence.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 5,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            seed: 42,
        }
    }
}

impl RetryPolicy {
    /// Delay before retry `n` (0-based): `min(cap, base·2ⁿ)` plus up to
    /// 50 % deterministic jitter, so a herd of retrying workers de-syncs
    /// reproducibly.
    pub fn delay(&self, n: u32, jitter_state: &mut u64) -> Duration {
        let exp = self.base.saturating_mul(1u32 << n.min(16)).min(self.cap);
        let jitter_frac = (splitmix64(jitter_state) >> 11) as f64 / (1u64 << 53) as f64;
        exp + exp.mul_f64(0.5 * jitter_frac)
    }

    /// Full-jitter delay before retry `n` (0-based):
    /// `uniform(0, min(cap, base·2ⁿ))`, the AWS "full jitter" scheme. The
    /// draw is seeded and deterministic (same `jitter_state` sequence,
    /// same delays). Orphaned workers polling a dead tracker use this —
    /// full jitter spreads an entire fleet's re-attach storm across the
    /// whole backoff window instead of synchronizing it at the cap.
    pub fn full_jitter_delay(&self, n: u32, jitter_state: &mut u64) -> Duration {
        let exp = self.base.saturating_mul(1u32 << n.min(16)).min(self.cap);
        let jitter_frac = (splitmix64(jitter_state) >> 11) as f64 / (1u64 << 53) as f64;
        exp.mul_f64(jitter_frac)
    }
}

/// SplitMix64 step — tiny seeded PRNG so this crate stays dependency-free.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A persistent connection to one RPC server, re-established transparently
/// (within the retry budget) when a call fails mid-flight.
pub struct RpcClient {
    addr: String,
    policy: RetryPolicy,
    timeout: Duration,
    conn: Option<TcpStream>,
    jitter_state: u64,
    retries: Arc<AtomicU64>,
    corrupt: Arc<AtomicU64>,
}

impl RpcClient {
    /// Connect to `addr` and perform the versioned handshake. `timeout`
    /// bounds every read and write on the connection (a hung peer fails
    /// the call instead of hanging the worker).
    pub fn connect(
        addr: impl Into<String>,
        policy: RetryPolicy,
        timeout: Duration,
    ) -> Result<Self, RpcError> {
        let mut c = Self {
            addr: addr.into(),
            jitter_state: policy.seed,
            policy,
            timeout,
            conn: None,
            retries: Arc::new(AtomicU64::new(0)),
            corrupt: Arc::new(AtomicU64::new(0)),
        };
        c.ensure_connected()?;
        Ok(c)
    }

    /// Cumulative reconnect/retry count (shared handle — clone it into a
    /// heartbeat loop to report retries without borrowing the client).
    pub fn retry_counter(&self) -> Arc<AtomicU64> {
        self.retries.clone()
    }

    /// Cumulative count of frames this client rejected for a checksum
    /// mismatch (the link damaged bytes in flight). Each one poisoned a
    /// connection; same shared-handle shape as [`retry_counter`](Self::retry_counter).
    pub fn corrupt_counter(&self) -> Arc<AtomicU64> {
        self.corrupt.clone()
    }

    /// The address this client dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn dial(&self) -> Result<TcpStream, RpcError> {
        let stream = TcpStream::connect(&self.addr).map_err(FrameError::Io)?;
        stream.set_nodelay(true).map_err(FrameError::Io)?;
        stream.set_read_timeout(Some(self.timeout)).map_err(FrameError::Io)?;
        stream.set_write_timeout(Some(self.timeout)).map_err(FrameError::Io)?;
        let mut stream = stream;
        write_frame(
            &mut stream,
            &Msg::Hello { magic: MAGIC, version: PROTOCOL_VERSION }.encode(),
        )?;
        let reply = Msg::decode(&read_frame(&mut stream)?).map_err(FrameError::Wire)?;
        match reply {
            Msg::HelloAck { .. } => Ok(stream),
            Msg::HelloReject { expected, got } => {
                Err(RpcError::HandshakeRejected { expected, got })
            }
            _ => Err(RpcError::BadHandshake),
        }
    }

    fn ensure_connected(&mut self) -> Result<(), RpcError> {
        if self.conn.is_some() {
            return Ok(());
        }
        let mut last: Option<RpcError> = None;
        for attempt in 0..self.policy.max_attempts {
            if attempt > 0 {
                self.retries.fetch_add(1, Ordering::Relaxed);
                let d = self.policy.delay(attempt - 1, &mut self.jitter_state);
                std::thread::sleep(d);
            }
            match self.dial() {
                Ok(s) => {
                    self.conn = Some(s);
                    return Ok(());
                }
                // Version skew is permanent: retrying cannot fix it.
                Err(e @ RpcError::HandshakeRejected { .. }) => return Err(e),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or(RpcError::BadHandshake))
    }

    /// One request/response exchange. A transport failure — or a frame
    /// whose checksum fails, meaning the *connection* is damaging bytes —
    /// drops the connection and retries the whole call (fresh dial +
    /// handshake) within the retry budget; other wire errors from the peer
    /// are not retried — a peer that frames garbage will frame garbage
    /// again.
    pub fn call(&mut self, msg: &Msg) -> Result<Msg, RpcError> {
        let payload = msg.encode();
        let mut last: Option<RpcError> = None;
        for attempt in 0..self.policy.max_attempts {
            if attempt > 0 {
                self.retries.fetch_add(1, Ordering::Relaxed);
                let d = self.policy.delay(attempt - 1, &mut self.jitter_state);
                std::thread::sleep(d);
            }
            if let Err(e) = self.ensure_connected() {
                match e {
                    RpcError::HandshakeRejected { .. } => return Err(e),
                    e => {
                        last = Some(e);
                        continue;
                    }
                }
            }
            let stream = self.conn.as_mut().expect("just connected");
            let result = write_frame(stream, &payload)
                .and_then(|()| read_frame(stream))
                .map_err(RpcError::from)
                .and_then(|bytes| {
                    Msg::decode(&bytes).map_err(|e| RpcError::Frame(FrameError::Wire(e)))
                });
            match result {
                Ok(reply) => return Ok(reply),
                Err(
                    e @ RpcError::Frame(FrameError::Wire(
                        crate::wire::WireError::ChecksumMismatch { .. },
                    )),
                ) => {
                    // The link damaged a frame in flight: the connection is
                    // poisoned — count it, reconnect, retry.
                    self.corrupt.fetch_add(1, Ordering::Relaxed);
                    self.conn = None;
                    last = Some(e);
                }
                Err(e @ RpcError::Frame(FrameError::Io(_))) => {
                    // Transport broke mid-call: reconnect and retry.
                    self.conn = None;
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or(RpcError::BadHandshake))
    }

    /// Like [`call`](Self::call) but maps "server gone" (every retry
    /// exhausted) to `None` — for shutdown paths where a dead server is
    /// success.
    pub fn call_opt(&mut self, msg: &Msg) -> Option<Msg> {
        self.call(msg).ok()
    }
}

/// `true` when an io error is a timeout (the read/write deadline fired).
pub fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_to_cap_and_jitter_is_deterministic() {
        let p = RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(100),
            seed: 7,
        };
        let mut s1 = p.seed;
        let mut s2 = p.seed;
        let mut prev = Duration::ZERO;
        for n in 0..6 {
            let d1 = p.delay(n, &mut s1);
            let d2 = p.delay(n, &mut s2);
            assert_eq!(d1, d2, "same seed, same jitter");
            let exp = (p.base * (1 << n)).min(p.cap);
            assert!(d1 >= exp && d1 <= exp + exp.mul_f64(0.5), "attempt {n}: {d1:?}");
            if exp < p.cap {
                assert!(d1 > prev, "backoff grows until capped");
            }
            prev = d1;
        }
    }

    #[test]
    fn backoff_cap_is_respected_at_any_attempt() {
        let p = RetryPolicy {
            max_attempts: 64,
            base: Duration::from_millis(3),
            cap: Duration::from_millis(50),
            seed: 11,
        };
        let mut s = p.seed;
        let ceiling = p.cap + p.cap.mul_f64(0.5); // cap + full jitter bound
        for n in 0..64 {
            let d = p.delay(n, &mut s);
            assert!(d <= ceiling, "attempt {n}: {d:?} exceeds {ceiling:?}");
            assert!(d >= p.base, "attempt {n}: {d:?} below base");
        }
        // Far past the doubling range the exponential part sits exactly on
        // the cap, so only jitter varies.
        let mut s = p.seed;
        for n in 20..40 {
            let d = p.delay(n, &mut s);
            assert!(d >= p.cap, "attempt {n}: exponential part must be capped, got {d:?}");
        }
    }

    #[test]
    fn jitter_stays_within_the_documented_half_bound() {
        let p = RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(8),
            cap: Duration::from_millis(512),
            seed: 99,
        };
        let mut s = p.seed;
        for n in 0..200u32 {
            let exp = p.base.saturating_mul(1 << n.min(6)).min(p.cap);
            let d = p.delay(n.min(6), &mut s);
            let jitter = d - exp;
            assert!(
                jitter <= exp.mul_f64(0.5),
                "attempt {n}: jitter {jitter:?} above 50% of {exp:?}"
            );
        }
    }

    /// Pins the exact full-jitter draw sequence for a fixed seed. The
    /// orphaned-worker re-attach loop schedules sleeps off this sequence;
    /// a silent PRNG or rounding change would shift every failover trace,
    /// so the values are asserted verbatim (in microseconds).
    #[test]
    fn full_jitter_draw_sequence_is_pinned() {
        let p = RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(400),
            seed: 0xC0FFEE,
        };
        let mut s = p.seed;
        let draws: Vec<u128> = (0..10).map(|n| p.full_jitter_delay(n, &mut s).as_micros()).collect();
        assert_eq!(
            draws,
            vec![7910, 18507, 21210, 28263, 122045, 285614, 13737, 349440, 41091, 254812]
        );
        // Full jitter is bounded by the exponential envelope and hits the
        // cap region without ever exceeding it.
        let mut s = p.seed;
        for n in 0..64u32 {
            let d = p.full_jitter_delay(n, &mut s);
            let exp = p.base.saturating_mul(1 << n.min(16)).min(p.cap);
            assert!(d <= exp, "attempt {n}: {d:?} above envelope {exp:?}");
            assert!(d <= p.cap, "attempt {n}: {d:?} above cap");
        }
        // Determinism: same seed replays the same sequence.
        let (mut s1, mut s2) = (p.seed, p.seed);
        for n in 0..32 {
            assert_eq!(p.full_jitter_delay(n, &mut s1), p.full_jitter_delay(n, &mut s2));
        }
    }

    #[test]
    fn different_seeds_desync_the_herd() {
        let mk = |seed| RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(400),
            seed,
        };
        let (a, b) = (mk(1), mk(2));
        let (mut sa, mut sb) = (a.seed, b.seed);
        let distinct = (0..16).filter(|&n| a.delay(n % 5, &mut sa) != b.delay(n % 5, &mut sb));
        assert!(
            distinct.count() >= 12,
            "two clients with different seeds must not retry in lockstep"
        );
    }

    /// A peer that hands back one damaged reply frame poisons only that
    /// connection: the call succeeds on the reconnect, and the damage is
    /// tallied on the corrupt counter (the heartbeat reports it upstream).
    #[test]
    fn corrupt_reply_is_counted_and_survived_by_reconnect() {
        use crate::frame::{read_frame, write_frame};
        use crate::wire::fnv1a32;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            for (i, conn) in listener.incoming().take(2).enumerate() {
                let mut s = conn.expect("accept");
                let _hello = read_frame(&mut s).expect("hello");
                write_frame(&mut s, &Msg::HelloAck { version: PROTOCOL_VERSION }.encode())
                    .expect("ack");
                let _req = read_frame(&mut s).expect("request");
                let payload = Msg::Ack.encode();
                if i == 0 {
                    // First connection: frame the reply with a wrong
                    // checksum, as a damaging link would.
                    let mut bytes = (payload.len() as u32).to_be_bytes().to_vec();
                    bytes.extend((fnv1a32(&payload) ^ 1).to_be_bytes());
                    bytes.extend(&payload);
                    io::Write::write_all(&mut s, &bytes).expect("bad frame");
                } else {
                    write_frame(&mut s, &payload).expect("good frame");
                }
            }
        });
        let policy = RetryPolicy {
            max_attempts: 3,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
            seed: 5,
        };
        let mut client =
            RpcClient::connect(&addr, policy, Duration::from_millis(500)).expect("connect");
        let corrupt = client.corrupt_counter();
        assert_eq!(client.call(&Msg::Ack).expect("retried call"), Msg::Ack);
        assert_eq!(corrupt.load(Ordering::Relaxed), 1, "one damaged frame, one tally");
    }

    #[test]
    fn connect_to_nothing_exhausts_retries() {
        // Port 1 is essentially never listening; tiny budget keeps it fast.
        let policy = RetryPolicy {
            max_attempts: 2,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
            seed: 1,
        };
        let err = RpcClient::connect("127.0.0.1:1", policy, Duration::from_millis(100))
            .err()
            .expect("nothing listens on port 1");
        assert!(matches!(err, RpcError::Frame(FrameError::Io(_))), "{err}");
    }
}
