//! Per-peer circuit breakers.
//!
//! A breaker sits in front of a flaky peer and converts "keep timing out
//! against a dead host" into "fail fast, probe occasionally". It is
//! deliberately clock-free: the cooldown is counted in [`check`] calls, so
//! callers that poll on a fixed cadence (the worker's fetch loops run once
//! per heartbeat) get a cooldown proportional to real time while the
//! breaker itself stays deterministic and trivially testable.
//!
//! State machine: *closed* (requests flow; consecutive failures are
//! counted) → *open* after `threshold` consecutive failures (requests are
//! refused for `cooldown` checks) → *half-open* (exactly one probe request
//! is let through) → closed again on probe success, or re-open on probe
//! failure. Every transition into open is a **trip**; every transition
//! back to closed is a **close** — the worker reports both as heartbeat
//! deltas so the tracker's counters account for every trip.
//!
//! [`check`]: CircuitBreaker::check

/// When a breaker opens and how long it stays open.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Consecutive failures that trip the breaker open.
    pub threshold: u32,
    /// [`check`](CircuitBreaker::check) calls refused before a half-open
    /// probe is allowed.
    pub cooldown: u32,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        Self { threshold: 3, cooldown: 8 }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    Closed,
    /// Refusing requests; `u32` checks remain before a probe is allowed.
    Open(u32),
    /// One probe is in flight; its outcome decides the next state.
    HalfOpen,
}

/// A circuit breaker guarding one peer. See the module docs for the state
/// machine.
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    policy: BreakerPolicy,
    state: State,
    consecutive_failures: u32,
    /// Trips (transitions into open) since the last success. The worker
    /// uses this as the "unreachable past the breaker budget" signal.
    trips_since_success: u32,
    /// Lifetime trip count.
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker under `policy`.
    pub fn new(policy: BreakerPolicy) -> Self {
        Self {
            policy,
            state: State::Closed,
            consecutive_failures: 0,
            trips_since_success: 0,
            trips: 0,
        }
    }

    /// May a request proceed right now? `false` fails fast without
    /// touching the peer. While open, each call burns one cooldown unit;
    /// when the cooldown is spent the breaker goes half-open and admits
    /// exactly one probe (subsequent checks keep refusing until the probe
    /// reports back via [`record_success`](Self::record_success) /
    /// [`record_failure`](Self::record_failure)).
    pub fn check(&mut self) -> bool {
        match self.state {
            State::Closed => true,
            State::Open(0) => {
                self.state = State::HalfOpen;
                true
            }
            State::Open(remaining) => {
                self.state = State::Open(remaining - 1);
                false
            }
            State::HalfOpen => false,
        }
    }

    /// The guarded request succeeded. Returns `true` when this closed a
    /// previously-open breaker (a `circuit_close` event).
    pub fn record_success(&mut self) -> bool {
        let was_open = self.state != State::Closed;
        self.state = State::Closed;
        self.consecutive_failures = 0;
        self.trips_since_success = 0;
        was_open
    }

    /// The guarded request failed. Returns `true` when this tripped the
    /// breaker open (a `circuit_open` event) — from closed after
    /// `threshold` consecutive failures, or immediately on a failed
    /// half-open probe.
    pub fn record_failure(&mut self) -> bool {
        match self.state {
            State::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.policy.threshold {
                    self.trip();
                    return true;
                }
                false
            }
            State::HalfOpen => {
                self.trip();
                true
            }
            State::Open(_) => false, // a straggler failure while already open
        }
    }

    fn trip(&mut self) {
        self.state = State::Open(self.policy.cooldown);
        self.consecutive_failures = 0;
        self.trips_since_success += 1;
        self.trips += 1;
    }

    /// Is the breaker currently refusing requests?
    pub fn is_open(&self) -> bool {
        self.state != State::Closed
    }

    /// Trips since the last successful request — the caller's signal that
    /// a peer is unreachable past its budget and stronger medicine
    /// (alternate source, re-execution) is needed.
    pub fn trips_since_success(&self) -> u32 {
        self.trips_since_success
    }

    /// Lifetime trip count.
    pub fn trips(&self) -> u64 {
        self.trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold_and_fails_fast() {
        let mut b = CircuitBreaker::new(BreakerPolicy { threshold: 3, cooldown: 4 });
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        assert!(b.record_failure(), "third consecutive failure trips");
        assert!(b.is_open());
        for _ in 0..4 {
            assert!(!b.check(), "cooldown refuses requests");
        }
        assert!(b.check(), "cooldown spent: one half-open probe admitted");
        assert!(!b.check(), "only one probe until it reports back");
    }

    #[test]
    fn probe_success_closes_probe_failure_reopens() {
        let mut b = CircuitBreaker::new(BreakerPolicy { threshold: 1, cooldown: 0 });
        assert!(b.record_failure());
        assert!(b.check(), "cooldown 0: immediate probe");
        assert!(b.record_failure(), "failed probe re-trips");
        assert_eq!(b.trips(), 2);
        assert!(b.check());
        assert!(b.record_success(), "probe success closes");
        assert!(!b.is_open());
        assert_eq!(b.trips_since_success(), 0);
        assert!(b.check(), "closed breaker admits freely");
    }

    #[test]
    fn success_resets_consecutive_failures() {
        let mut b = CircuitBreaker::new(BreakerPolicy { threshold: 2, cooldown: 1 });
        assert!(!b.record_failure());
        assert!(!b.record_success(), "closing a closed breaker is not an event");
        assert!(!b.record_failure(), "counter restarted after the success");
        assert!(b.record_failure());
        assert_eq!(b.trips_since_success(), 1);
    }

    /// Pins the exact cooldown-boundary arithmetic: with `cooldown: n`,
    /// exactly `n` checks are refused and check `n+1` admits the probe —
    /// not `n-1`, not `n+2`. The orphaned-worker re-attach loop paces
    /// itself on this count, so an off-by-one here would silently stretch
    /// or shrink every failover.
    #[test]
    fn probe_admitted_exactly_at_cooldown_boundary() {
        for cooldown in [0u32, 1, 2, 5] {
            let mut b = CircuitBreaker::new(BreakerPolicy { threshold: 1, cooldown });
            assert!(b.record_failure(), "threshold 1 trips immediately");
            for i in 0..cooldown {
                assert!(!b.check(), "cooldown {cooldown}: check {i} must refuse");
            }
            assert!(b.check(), "cooldown {cooldown}: boundary check admits the probe");
            assert!(b.is_open(), "half-open still counts as open");
            assert!(b.record_success(), "boundary probe success closes");
        }
    }

    /// A failed probe re-trips and restarts the *full* cooldown — the
    /// breaker does not remember how far the previous cooldown had
    /// counted, and `trips_since_success` keeps climbing until a success.
    #[test]
    fn failed_probe_restarts_a_full_cooldown() {
        let mut b = CircuitBreaker::new(BreakerPolicy { threshold: 2, cooldown: 3 });
        assert!(!b.record_failure());
        assert!(b.record_failure());
        assert_eq!(b.trips_since_success(), 1);
        for round in 1..4u32 {
            for i in 0..3 {
                assert!(!b.check(), "round {round}: cooldown check {i} refuses");
            }
            assert!(b.check(), "round {round}: probe admitted");
            assert!(b.record_failure(), "round {round}: failed probe re-trips");
            assert_eq!(b.trips_since_success(), 1 + round);
        }
        assert_eq!(b.trips(), 4);
        // The escalation signal the worker keys on never reset mid-outage.
        assert!(b.trips_since_success() >= 2);
    }

    /// While one probe is in flight, every further check is refused — the
    /// half-open state admits exactly one concurrent request no matter how
    /// many callers poll, and straggler failures (from requests issued
    /// before the trip) neither re-trip nor extend the cooldown.
    #[test]
    fn half_open_admits_one_probe_under_concurrent_checks() {
        let mut b = CircuitBreaker::new(BreakerPolicy { threshold: 1, cooldown: 2 });
        assert!(b.record_failure());
        assert!(!b.check());
        // Straggler failure mid-cooldown: not an event, cooldown unmoved.
        assert!(!b.record_failure(), "straggler failure while open is not a trip");
        assert!(!b.check(), "cooldown not extended by the straggler");
        assert!(b.check(), "probe admitted");
        for i in 0..16 {
            assert!(!b.check(), "concurrent check {i} during the probe must refuse");
        }
        assert_eq!(b.trips(), 1, "refused checks are not trips");
        assert!(b.record_success());
        assert!(b.check(), "closed after the probe reported success");
    }
}
