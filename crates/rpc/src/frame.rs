//! Length-prefixed framing over a byte stream.
//!
//! A frame is a 4-byte big-endian payload length followed by the payload
//! (one encoded [`crate::Msg`]). The length is checked against
//! [`MAX_FRAME`](crate::wire::MAX_FRAME) on both sides before any
//! allocation.

use crate::wire::{WireError, MAX_FRAME};
use std::io::{self, Read, Write};

/// Errors a framed read/write can produce.
#[derive(Debug)]
pub enum FrameError {
    /// Transport failure (connection reset, timeout, EOF mid-frame…).
    Io(io::Error),
    /// The peer sent a malformed frame or message.
    Wire(WireError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "io: {e}"),
            FrameError::Wire(e) => write!(f, "wire: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> Self {
        FrameError::Wire(e)
    }
}

/// Write one frame. Oversize payloads are refused locally — a bug here
/// must not become a peer's problem.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() > MAX_FRAME {
        return Err(WireError::OversizeFrame(payload.len() as u64).into());
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame. A length prefix beyond [`MAX_FRAME`] is rejected before
/// any buffer is reserved.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(WireError::OversizeFrame(len as u64).into());
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cur = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cur).unwrap(), b"hello");
        assert_eq!(read_frame(&mut cur).unwrap(), b"");
        assert!(matches!(read_frame(&mut cur), Err(FrameError::Io(_))), "EOF");
    }

    #[test]
    fn oversize_length_prefix_rejected_without_allocation() {
        let mut bytes = u32::MAX.to_be_bytes().to_vec();
        bytes.extend_from_slice(b"xx");
        let mut cur = io::Cursor::new(bytes);
        match read_frame(&mut cur) {
            Err(FrameError::Wire(WireError::OversizeFrame(n))) => {
                assert_eq!(n, u32::MAX as u64)
            }
            other => panic!("expected oversize error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frame_is_io_error() {
        let mut bytes = 10u32.to_be_bytes().to_vec();
        bytes.extend_from_slice(b"only4");
        let mut cur = io::Cursor::new(bytes);
        assert!(matches!(read_frame(&mut cur), Err(FrameError::Io(_))));
    }
}
