//! Length-prefixed, checksummed framing over a byte stream.
//!
//! A frame is a 4-byte big-endian payload length, a 4-byte big-endian
//! FNV-1a checksum of the payload, then the payload (one encoded
//! [`crate::Msg`]). The length is checked against
//! [`MAX_FRAME`](crate::wire::MAX_FRAME) on both sides before any
//! allocation; the checksum is verified before the payload reaches the
//! message decoder, so corrupted bytes surface as a typed
//! [`WireError::ChecksumMismatch`] instead of decoding into a valid but
//! wrong message. A checksum failure poisons the *connection* (the peer or
//! the link is damaging bytes) — never the process.

use crate::wire::{fnv1a32, WireError, MAX_FRAME};
use std::io::{self, Read, Write};

/// Errors a framed read/write can produce.
#[derive(Debug)]
pub enum FrameError {
    /// Transport failure (connection reset, timeout, EOF mid-frame…).
    Io(io::Error),
    /// The peer sent a malformed frame or message.
    Wire(WireError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "io: {e}"),
            FrameError::Wire(e) => write!(f, "wire: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> Self {
        FrameError::Wire(e)
    }
}

/// Bytes of frame header: payload length + payload checksum.
pub const FRAME_HEADER: usize = 8;

/// Write one frame. Oversize payloads are refused locally — a bug here
/// must not become a peer's problem.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() > MAX_FRAME {
        return Err(WireError::OversizeFrame(payload.len() as u64).into());
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(&fnv1a32(payload).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame. A length prefix beyond [`MAX_FRAME`] is rejected before
/// any buffer is reserved; a payload whose checksum disagrees with the
/// header is rejected before it reaches the message decoder.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; FRAME_HEADER];
    r.read_exact(&mut header)?;
    let len = u32::from_be_bytes(header[..4].try_into().unwrap()) as usize;
    let declared = u32::from_be_bytes(header[4..].try_into().unwrap());
    if len > MAX_FRAME {
        return Err(WireError::OversizeFrame(len as u64).into());
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let computed = fnv1a32(&payload);
    if computed != declared {
        return Err(WireError::ChecksumMismatch { declared, computed }.into());
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cur = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cur).unwrap(), b"hello");
        assert_eq!(read_frame(&mut cur).unwrap(), b"");
        assert!(matches!(read_frame(&mut cur), Err(FrameError::Io(_))), "EOF");
    }

    #[test]
    fn oversize_length_prefix_rejected_without_allocation() {
        let mut bytes = u32::MAX.to_be_bytes().to_vec();
        bytes.extend_from_slice(&[0, 0, 0, 0]);
        bytes.extend_from_slice(b"xx");
        let mut cur = io::Cursor::new(bytes);
        match read_frame(&mut cur) {
            Err(FrameError::Wire(WireError::OversizeFrame(n))) => {
                assert_eq!(n, u32::MAX as u64)
            }
            other => panic!("expected oversize error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frame_is_io_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"0123456789").unwrap();
        buf.truncate(FRAME_HEADER + 4);
        let mut cur = io::Cursor::new(buf);
        assert!(matches!(read_frame(&mut cur), Err(FrameError::Io(_))));
    }

    #[test]
    fn corrupted_payload_is_checksum_mismatch() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"important bytes").unwrap();
        // Flip one payload bit; length stays valid, checksum must not.
        let last = buf.len() - 1;
        buf[last] ^= 0x40;
        let mut cur = io::Cursor::new(buf);
        match read_frame(&mut cur) {
            Err(FrameError::Wire(WireError::ChecksumMismatch { declared, computed })) => {
                assert_ne!(declared, computed);
            }
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_header_checksum_is_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        buf[5] ^= 0xFF; // inside the checksum word
        let mut cur = io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cur),
            Err(FrameError::Wire(WireError::ChecksumMismatch { .. }))
        ));
    }
}
