#![warn(missing_docs)]
//! # pnats-rpc — the cluster runtime's wire protocol
//!
//! A dependency-free, length-prefixed binary protocol over
//! `std::net::TcpStream`, built for the `pnats-cluster`
//! JobTracker/TaskTracker runtime:
//!
//! * [`wire`] — primitive big-endian encode/decode with *total* decoding:
//!   arbitrary bytes produce a value or a typed [`WireError`], never a
//!   panic, and declared lengths are validated against the remaining input
//!   before any allocation.
//! * [`msg`] — the message set (handshake, register, heartbeat, assign,
//!   data-plane fetches, shutdown), each a fixed field order behind one
//!   tag byte, so identical messages encode to identical bytes.
//! * [`frame`] — 4-byte big-endian length prefix + payload, with a 64 MiB
//!   [`MAX_FRAME`] guard enforced on both send and receive.
//! * [`client`] — a persistent connection with read/write deadlines,
//!   bounded reconnect-and-retry under exponential backoff with seeded
//!   jitter, and a versioned handshake ([`MAGIC`] + [`PROTOCOL_VERSION`])
//!   that refuses mismatched peers permanently (no retry can fix skew).
//! * [`server`] — a listener thread + thread per connection, dispatching
//!   each decoded message through a handler closure.
//! * [`chaos`] — a seeded fault-injecting proxy ([`ChaosNet`]) driven by a
//!   [`ChaosPlan`]: per-link partitions, black holes, resets, corruption,
//!   truncation, drops, delay and throttling, every probabilistic decision
//!   a pure function of the seed.
//! * [`breaker`] — per-peer circuit breakers ([`CircuitBreaker`]) with a
//!   check-counted cooldown and half-open probes, for callers that must
//!   fail fast against a partitioned peer.

pub mod breaker;
pub mod chaos;
pub mod client;
pub mod frame;
pub mod msg;
pub mod server;
pub mod wire;

pub use breaker::{BreakerPolicy, CircuitBreaker};
pub use chaos::{ChaosAction, ChaosEvent, ChaosFault, ChaosNet, ChaosPlan, ChaosProxy, LinkRule};
pub use client::{RetryPolicy, RpcClient, RpcError};
pub use frame::{read_frame, write_frame, FrameError};
pub use msg::{
    Assignment, MapDone, MapFailed, Msg, ProgressReport, ReduceDone, MAGIC, PROTOCOL_VERSION,
};
pub use server::{Handler, RpcServer};
pub use wire::{fnv1a32, Reader, WireError, Writer, MAX_FRAME};
