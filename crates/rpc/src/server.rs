//! The RPC server: a TCP listener, a thread per connection, a handler
//! closure per message. The handshake rejects peers with version skew
//! before any application message is exchanged.

use crate::frame::{read_frame, write_frame, FrameError};
use crate::msg::{Msg, MAGIC, PROTOCOL_VERSION};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The per-message application handler. Returns the reply to frame back.
pub type Handler = Arc<dyn Fn(Msg) -> Msg + Send + Sync>;

/// A running RPC server. Dropping it (or calling [`stop`](Self::stop))
/// shuts the accept loop down and joins it; in-flight connection threads
/// notice the stop flag at their next read deadline.
pub struct RpcServer {
    addr: String,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl RpcServer {
    /// Bind `addr` (use port 0 for an OS-assigned port — the actual
    /// address is [`addr`](Self::addr)) and serve each decoded message
    /// through `handler`. `read_timeout` doubles as the stop-flag poll
    /// interval for idle connections.
    pub fn bind(
        addr: &str,
        handler: Handler,
        read_timeout: Duration,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?.to_string();
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let accept_thread = std::thread::spawn(move || {
            let mut conns: Vec<JoinHandle<()>> = Vec::new();
            while !stop2.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let handler = handler.clone();
                        let stop = stop2.clone();
                        conns.push(std::thread::spawn(move || {
                            let _ = serve_conn(stream, handler, stop, read_timeout);
                        }));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
                conns.retain(|c| !c.is_finished());
            }
            for c in conns {
                let _ = c.join();
            }
        });
        Ok(Self { addr: local, stop, accept_thread: Some(accept_thread) })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Stop accepting, wake idle connections, join all threads.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for RpcServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_conn(
    mut stream: TcpStream,
    handler: Handler,
    stop: Arc<AtomicBool>,
    read_timeout: Duration,
) -> Result<(), FrameError> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(read_timeout))?;
    stream.set_write_timeout(Some(read_timeout))?;

    // Handshake: first frame must be a well-versed Hello.
    let hello = Msg::decode(&read_frame(&mut stream)?)?;
    match hello {
        Msg::Hello { magic, version }
            if magic == MAGIC && version == PROTOCOL_VERSION =>
        {
            write_frame(&mut stream, &Msg::HelloAck { version: PROTOCOL_VERSION }.encode())?;
        }
        Msg::Hello { version, .. } => {
            // Wrong magic or version: tell the peer what we speak, close.
            write_frame(
                &mut stream,
                &Msg::HelloReject { expected: PROTOCOL_VERSION, got: version }.encode(),
            )?;
            return Ok(());
        }
        _ => return Ok(()), // not even a Hello; drop silently
    }

    loop {
        let payload = match read_frame(&mut stream) {
            Ok(p) => p,
            Err(FrameError::Io(e))
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::SeqCst) {
                    return Ok(());
                }
                continue; // idle; poll the stop flag and keep listening
            }
            Err(_) => return Ok(()), // peer hung up (or framed garbage)
        };
        let msg = match Msg::decode(&payload) {
            Ok(m) => m,
            Err(_) => return Ok(()), // garbage message: close the connection
        };
        let reply = handler(msg);
        write_frame(&mut stream, &reply.encode())?;
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{RetryPolicy, RpcClient, RpcError};

    fn echo_server() -> RpcServer {
        RpcServer::bind(
            "127.0.0.1:0",
            Arc::new(|msg| match msg {
                Msg::WhereIs { map } => Msg::MapAt { node: map, addr: format!("echo:{map}"), attempt: 0 },
                other => other,
            }),
            Duration::from_millis(20),
        )
        .expect("bind")
    }

    #[test]
    fn handshake_then_calls_round_trip() {
        let server = echo_server();
        let mut client = RpcClient::connect(
            server.addr(),
            RetryPolicy::default(),
            Duration::from_secs(2),
        )
        .expect("connect");
        for map in 0..5 {
            let reply = client.call(&Msg::WhereIs { map }).expect("call");
            assert_eq!(reply, Msg::MapAt { node: map, addr: format!("echo:{map}"), attempt: 0 });
        }
        assert_eq!(client.retry_counter().load(Ordering::Relaxed), 0);
    }

    #[test]
    fn version_skew_is_rejected() {
        let server = echo_server();
        // Speak the raw protocol with a wrong version.
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write_frame(
            &mut stream,
            &Msg::Hello { magic: MAGIC, version: PROTOCOL_VERSION + 1 }.encode(),
        )
        .unwrap();
        let reply = Msg::decode(&read_frame(&mut stream).unwrap()).unwrap();
        assert_eq!(
            reply,
            Msg::HelloReject { expected: PROTOCOL_VERSION, got: PROTOCOL_VERSION + 1 }
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        let server = echo_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write_frame(
            &mut stream,
            &Msg::Hello { magic: 0xBAD0_BAD0, version: PROTOCOL_VERSION }.encode(),
        )
        .unwrap();
        let reply = Msg::decode(&read_frame(&mut stream).unwrap()).unwrap();
        assert!(matches!(reply, Msg::HelloReject { .. }));
    }

    #[test]
    fn client_reconnects_after_server_restart() {
        let mut server = echo_server();
        let addr = server.addr().to_string();
        let mut client =
            RpcClient::connect(&addr, RetryPolicy::default(), Duration::from_secs(2))
                .expect("connect");
        assert!(client.call(&Msg::Ack).is_ok());
        server.stop();
        drop(server);
        // Rebind on the same port so the client's redial can succeed.
        let server2 = RpcServer::bind(
            &addr,
            Arc::new(|msg| msg),
            Duration::from_millis(20),
        )
        .expect("rebind");
        let reply = client.call(&Msg::Shutdown).expect("retried call");
        assert_eq!(reply, Msg::Shutdown);
        assert!(client.retry_counter().load(Ordering::Relaxed) >= 1);
        drop(server2);
    }

    #[test]
    fn call_to_stopped_server_exhausts_budget() {
        let mut server = echo_server();
        let addr = server.addr().to_string();
        let policy = RetryPolicy {
            max_attempts: 2,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
            seed: 3,
        };
        let mut client =
            RpcClient::connect(&addr, policy, Duration::from_millis(200)).expect("connect");
        server.stop();
        drop(server);
        let err = client.call(&Msg::Ack).expect_err("server is gone");
        assert!(matches!(err, RpcError::Frame(_)), "{err}");
    }
}
