//! Decode totality: arbitrary byte strings must never panic the decoder —
//! truncated frames, oversize length prefixes, unknown tags and corrupted
//! fields all map to typed errors. This is the robustness gate for the
//! wire format: a malicious or corrupt peer can only produce a clean
//! connection close, never a worker crash.

use pnats_rpc::{read_frame, FrameError, Msg, WireError, MAX_FRAME};
use proptest::prelude::*;

proptest! {
    /// Fully arbitrary bytes: decode returns Ok or a typed error.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..512)) {
        match Msg::decode(&bytes) {
            Ok(_) => {}
            Err(
                WireError::Truncated
                | WireError::OversizeFrame(_)
                | WireError::UnknownTag(_)
                | WireError::BadUtf8
                | WireError::BadBool(_)
                | WireError::TrailingBytes(_),
            ) => {}
            Err(e) => prop_assert!(false, "decode produced a non-decode error: {e:?}"),
        }
    }

    /// Bytes that start with a plausible tag (the harder paths: collection
    /// counts and string lengths get interpreted).
    #[test]
    fn tagged_garbage_never_panics(
        tag in 0u8..=20,
        rest in proptest::collection::vec(0u8..=255, 0..256),
    ) {
        let mut bytes = vec![tag];
        bytes.extend_from_slice(&rest);
        let _ = Msg::decode(&bytes); // must return, not panic
    }

    /// Valid messages survive arbitrary truncation + bit corruption
    /// without panicking, and pristine encodings still round-trip.
    #[test]
    fn mutated_valid_messages_never_panic(
        map in 0u32..1000,
        addr_len in 0usize..64,
        cut in 0usize..64,
        flip_at in 0usize..64,
        flip_bit in 0u8..8,
    ) {
        let msg = Msg::MapAt { node: map, addr: "x".repeat(addr_len), attempt: map % 7 };
        let bytes = msg.encode();
        prop_assert_eq!(Msg::decode(&bytes).unwrap(), msg);
        // Truncate.
        let cut = cut.min(bytes.len());
        let _ = Msg::decode(&bytes[..cut]);
        // Flip one bit.
        let mut corrupt = bytes.clone();
        let i = flip_at % corrupt.len();
        corrupt[i] ^= 1 << flip_bit;
        let _ = Msg::decode(&corrupt);
    }

    /// Framed reads reject oversize length prefixes before allocating.
    #[test]
    fn oversize_frame_prefix_is_rejected(len in (MAX_FRAME as u64 + 1)..=u32::MAX as u64) {
        let mut bytes = (len as u32).to_be_bytes().to_vec();
        bytes.extend_from_slice(b"payload");
        match read_frame(&mut std::io::Cursor::new(bytes)) {
            Err(FrameError::Wire(WireError::OversizeFrame(n))) => prop_assert_eq!(n, len),
            other => prop_assert!(false, "expected oversize rejection, got {other:?}"),
        }
    }

    /// A declared frame length the stream cannot back is an io error (EOF
    /// mid-frame), not a hang or panic.
    #[test]
    fn truncated_frame_is_io_error(declared in 1u32..10_000, actual in 0usize..100) {
        let mut bytes = declared.to_be_bytes().to_vec();
        bytes.extend(std::iter::repeat_n(0xAB, actual.min(declared as usize - 1)));
        match read_frame(&mut std::io::Cursor::new(bytes)) {
            Err(FrameError::Io(_)) => {}
            other => prop_assert!(false, "expected io error, got {other:?}"),
        }
    }
}
